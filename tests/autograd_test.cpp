// Analytic gradient checks for every autograd op, verified against central
// finite differences via nn::gradcheck.
#include "nn/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace dg::nn {
namespace {

Tensor param(int r, int c, util::Rng& rng) {
  return Tensor::leaf(normal(r, c, 0.5F, rng), /*requires_grad=*/true);
}

TEST(Autograd, Matmul) {
  util::Rng rng(1);
  Tensor a = param(3, 4, rng), b = param(4, 2, rng);
  const auto res = gradcheck([&] { return sum_all(matmul(a, b)); }, {a, b});
  EXPECT_TRUE(res.ok) << "rel=" << res.max_rel_err;
}

TEST(Autograd, AddSubMul) {
  util::Rng rng(2);
  Tensor a = param(2, 3, rng), b = param(2, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(add(a, b)); }, {a, b}).ok);
  EXPECT_TRUE(gradcheck([&] { return sum_all(sub(a, b)); }, {a, b}).ok);
  EXPECT_TRUE(gradcheck([&] { return sum_all(mul(a, b)); }, {a, b}).ok);
}

TEST(Autograd, ScaleAndAddRowvec) {
  util::Rng rng(3);
  Tensor a = param(3, 2, rng), b = param(1, 2, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(scale(a, -1.7F)); }, {a}).ok);
  EXPECT_TRUE(gradcheck([&] { return sum_all(add_rowvec(a, b)); }, {a, b}).ok);
}

TEST(Autograd, ScaleRows) {
  util::Rng rng(4);
  Tensor a = param(3, 4, rng), s = param(3, 1, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(scale_rows(a, s)); }, {a, s}).ok);
}

TEST(Autograd, Activations) {
  util::Rng rng(5);
  Tensor a = param(2, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(sigmoid(a)); }, {a}).ok);
  EXPECT_TRUE(gradcheck([&] { return sum_all(tanh_t(a)); }, {a}).ok);
  // ReLU: keep values away from the kink.
  Tensor b = Tensor::leaf(Matrix::from_vector(1, 4, {-1.0F, -0.5F, 0.5F, 1.0F}), true);
  EXPECT_TRUE(gradcheck([&] { return sum_all(relu(b)); }, {b}).ok);
}

TEST(Autograd, ConcatSlice) {
  util::Rng rng(6);
  Tensor a = param(2, 3, rng), b = param(2, 2, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(concat_cols(a, b)); }, {a, b}).ok);
  EXPECT_TRUE(gradcheck([&] { return sum_all(slice_cols(a, 1, 3)); }, {a}).ok);
}

TEST(Autograd, ConcatRows) {
  util::Rng rng(7);
  Tensor a = param(2, 3, rng), b = param(1, 3, rng), c = param(3, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(concat_rows({a, b, c})); }, {a, b, c}).ok);
  // weighted so each part's gradient differs
  Tensor w = param(6, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(mul(concat_rows({a, b, c}), w)); }, {a, b, c, w}).ok);
}

TEST(Autograd, GatherScatter) {
  util::Rng rng(8);
  Tensor a = param(4, 3, rng);
  const std::vector<int> idx{0, 2, 2, 3};
  Tensor w = param(4, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return sum_all(mul(gather_rows(a, idx), w)); }, {a, w}).ok);
  Tensor src = param(4, 2, rng);
  Tensor w2 = param(3, 2, rng);
  EXPECT_TRUE(
      gradcheck([&] { return sum_all(mul(scatter_add_rows(src, {1, 0, 1, 2}, 3), w2)); },
                {src, w2})
          .ok);
}

TEST(Autograd, SoftmaxSegments) {
  util::Rng rng(9);
  Tensor scores = param(6, 1, rng);
  const std::vector<int> seg{0, 0, 1, 1, 1, 2};
  Tensor w = param(6, 1, rng);
  const auto res =
      gradcheck([&] { return sum_all(mul(softmax_segments(scores, seg, 3), w)); }, {scores, w});
  EXPECT_TRUE(res.ok) << "rel=" << res.max_rel_err;
}

TEST(Autograd, SoftmaxSegmentsSumsToOnePerSegment) {
  util::Rng rng(10);
  Tensor scores = param(5, 1, rng);
  const std::vector<int> seg{0, 1, 1, 0, 1};
  const Tensor alpha = softmax_segments(scores, seg, 2);
  float s0 = alpha.value().at(0, 0) + alpha.value().at(3, 0);
  float s1 = alpha.value().at(1, 0) + alpha.value().at(2, 0) + alpha.value().at(4, 0);
  EXPECT_NEAR(s0, 1.0F, 1e-5F);
  EXPECT_NEAR(s1, 1.0F, 1e-5F);
}

TEST(Autograd, Losses) {
  util::Rng rng(11);
  Tensor pred = Tensor::leaf(normal(5, 1, 0.3F, rng), true);
  const Matrix target = normal(5, 1, 0.3F, rng);
  EXPECT_TRUE(gradcheck([&] { return mse_loss(pred, target); }, {pred}).ok);
  // L1: subgradient at zero — values here are off-zero with prob 1.
  EXPECT_TRUE(gradcheck([&] { return l1_loss(pred, target); }, {pred}).ok);
}

TEST(Autograd, MeanAll) {
  util::Rng rng(12);
  Tensor a = param(3, 3, rng);
  EXPECT_TRUE(gradcheck([&] { return mean_all(a); }, {a}).ok);
}

TEST(Autograd, GradAccumulatesAcrossSharedUse) {
  // f = sum(a*a) via two uses of `a`: grad should be 2a.
  Tensor a = Tensor::leaf(Matrix::from_vector(1, 2, {3.0F, -2.0F}), true);
  Tensor loss = sum_all(mul(a, a));
  loss.backward();
  ASSERT_TRUE(a.has_grad());
  EXPECT_NEAR(a.grad().at(0, 0), 6.0F, 1e-5F);
  EXPECT_NEAR(a.grad().at(0, 1), -4.0F, 1e-5F);
}

TEST(Autograd, NoGradGuardDisablesTaping) {
  Tensor a = Tensor::leaf(Matrix::full(1, 1, 2.0F), true);
  {
    NoGradGuard guard;
    Tensor y = mul(a, a);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y2 = mul(a, a);
  EXPECT_TRUE(y2.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = Tensor::leaf(Matrix::zeros(2, 2), true);
  Tensor y = mul(a, a);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(Autograd, ZeroGradClears) {
  Tensor a = Tensor::leaf(Matrix::full(1, 1, 1.0F), true);
  sum_all(mul(a, a)).backward();
  EXPECT_TRUE(a.has_grad());
  a.zero_grad();
  EXPECT_FALSE(a.has_grad());
}

TEST(Autograd, DiamondGraphGradient) {
  // y = sum((a+a) * (a*2)) = sum(4 a^2) -> dy/da = 8a
  Tensor a = Tensor::leaf(Matrix::full(1, 1, 3.0F), true);
  Tensor left = add(a, a);
  Tensor right = scale(a, 2.0F);
  sum_all(mul(left, right)).backward();
  EXPECT_NEAR(a.grad().at(0, 0), 24.0F, 1e-4F);
}

}  // namespace
}  // namespace dg::nn
