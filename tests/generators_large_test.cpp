// Functional verification of the Table III design generators: the
// multiplier must multiply, the squarer must square, the arbiter must grant
// exactly one requester with correct priority — checked bit-exactly via
// simulation against software arithmetic.
#include "data/generators_large.hpp"

#include "analysis/stats.hpp"
#include "aig/gate_graph.hpp"
#include "sim/bitsim.hpp"
#include "synth/optimize.hpp"
#include "synth/sweep.hpp"
#include "util/rng.hpp"

#include <bit>

#include <gtest/gtest.h>

namespace dg::data {
namespace {

using namespace dg::aig;

/// Drive single-pattern inputs (bit 0 of each word) and read outputs.
std::uint64_t eval_outputs(const Aig& a, std::uint64_t input_bits) {
  std::vector<std::uint64_t> patterns(a.num_inputs());
  for (std::size_t i = 0; i < patterns.size(); ++i)
    patterns[i] = (input_bits >> i) & 1 ? ~0ULL : 0ULL;
  const auto words = sim::simulate_aig(a, patterns);
  std::uint64_t out = 0;
  for (std::size_t o = 0; o < a.num_outputs(); ++o)
    out |= (sim::lit_word(words, a.outputs()[o]) & 1ULL) << o;
  return out;
}

TEST(Multiplier, ComputesProducts) {
  const int bits = 8;
  const Aig a = gen_multiplier(bits);
  ASSERT_EQ(a.num_inputs(), 16U);
  ASSERT_EQ(a.num_outputs(), 16U);
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = rng.next_below(256);
    const std::uint64_t y = rng.next_below(256);
    const std::uint64_t result = eval_outputs(a, x | (y << 8));
    EXPECT_EQ(result, x * y) << x << " * " << y;
  }
}

TEST(Squarer, ComputesSquares) {
  const int bits = 8;
  const Aig a = gen_squarer(bits);
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = rng.next_below(256);
    EXPECT_EQ(eval_outputs(a, x), x * x) << x;
  }
}

TEST(Squarer, SharesPartialProducts) {
  // pp(i,j) == pp(j,i) must be strashed: the squarer needs fewer ANDs than
  // the same-width multiplier.
  EXPECT_LT(gen_squarer(10).num_ands(), gen_multiplier(10).num_ands());
}

TEST(Arbiter, GrantsExactlyOneWhenRequested) {
  const Aig a = gen_arbiter(8, 2);
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t req = rng.next_below(256);
    const std::uint64_t ptr = rng.next_below(8);
    const std::uint64_t grants = eval_outputs(a, req | (ptr << 8));
    if (req == 0) {
      EXPECT_EQ(grants, 0ULL);
    } else {
      EXPECT_EQ(std::popcount(grants), 1) << "req=" << req << " ptr=" << ptr;
      EXPECT_NE(grants & req, 0ULL);  // granted line was requested
    }
  }
}

TEST(Arbiter, RespectsRoundRobinPointer) {
  // Single-stage arbiter: with requests {0, 5} and pointer 3, request 5 (the
  // first at-or-after the pointer) must win; with pointer 0, request 0 wins.
  const Aig a = gen_arbiter(8, 1);
  const std::uint64_t req = (1ULL << 0) | (1ULL << 5);
  EXPECT_EQ(eval_outputs(a, req | (3ULL << 8)), 1ULL << 5);
  EXPECT_EQ(eval_outputs(a, req | (0ULL << 8)), 1ULL << 0);
  EXPECT_EQ(eval_outputs(a, req | (6ULL << 8)), 1ULL << 0);  // wraps to unmasked
}

TEST(Arbiter, IsHeavilyReconvergent) {
  // The paper attributes DeepGate's largest win (73.6% on Arbiter) to its
  // reconvergence handling; the generated arbiter must exhibit that trait.
  const Aig a = synth::drop_constant_outputs(synth::optimize(gen_arbiter(32, 2)));
  const auto stats = analysis::compute_stats(to_gate_graph(a));
  EXPECT_GT(static_cast<double>(stats.num_reconv_nodes) /
                static_cast<double>(stats.num_nodes),
            0.3);
}

TEST(ProcessorSlice, AluAddPathWorks) {
  // We can't decode the whole unit mix, but the slice must at least be a
  // well-formed deterministic function with full-width outputs.
  const Aig a = gen_processor_slice(8, 2, 99);
  EXPECT_GT(a.num_outputs(), 8U);
  const std::uint64_t r1 = eval_outputs(a, 0x1234ULL);
  const std::uint64_t r2 = eval_outputs(a, 0x1234ULL);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(eval_outputs(a, 0x1234ULL), eval_outputs(a, 0x4321ULL));
}

TEST(Table3Designs, AllScalesProduceFiveCleanDesigns) {
  for (const auto scale : {util::BenchScale::kTiny, util::BenchScale::kSmall}) {
    const auto designs = table3_designs(scale);
    ASSERT_EQ(designs.size(), 5U);
    for (const auto& d : designs) {
      EXPECT_GT(d.aig.num_ands(), 100U) << d.name;
      EXPECT_GT(d.aig.depth(), 10) << d.name;
    }
  }
}

TEST(Table3Designs, SmallScaleIsLargerThanTiny) {
  const auto tiny = table3_designs(util::BenchScale::kTiny);
  const auto small = table3_designs(util::BenchScale::kSmall);
  for (std::size_t i = 0; i < tiny.size(); ++i)
    EXPECT_GT(small[i].aig.num_ands(), tiny[i].aig.num_ands()) << tiny[i].name;
}

TEST(Table3Designs, TwoOrdersAboveTrainingCircuits) {
  // The paper's premise: evaluation designs are 'two orders of magnitude'
  // larger than training sub-circuits. At small scale we still require a
  // solid gap (>= 2k ANDs vs <= 3.2k-node training graphs).
  for (const auto& d : table3_designs(util::BenchScale::kSmall))
    EXPECT_GE(d.aig.num_ands(), 1500U) << d.name;
}

}  // namespace
}  // namespace dg::data
