#include "data/dataset.hpp"

#include "data/generators_large.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dg::data {
namespace {

DatasetConfig tiny_config() {
  DatasetConfig cfg = default_dataset_config(util::BenchScale::kTiny, 3);
  cfg.sim_patterns = 5000;
  return cfg;
}

TEST(Dataset, BuildsAllFamilies) {
  const Dataset ds = build_dataset(tiny_config());
  EXPECT_GE(ds.graphs.size(), 16U);
  ASSERT_EQ(ds.graphs.size(), ds.info.size());
  std::set<std::string> families;
  for (const auto& info : ds.info) families.insert(info.family);
  EXPECT_EQ(families.size(), 4U);
}

TEST(Dataset, LabelsAreProbabilities) {
  const Dataset ds = build_dataset(tiny_config());
  for (const auto& g : ds.graphs) {
    ASSERT_EQ(static_cast<int>(g.labels.size()), g.num_nodes);
    for (float label : g.labels) {
      EXPECT_GE(label, 0.0F);
      EXPECT_LE(label, 1.0F);
    }
  }
}

TEST(Dataset, PiLabelsNearHalf) {
  // Primary inputs see uniform random patterns: p ~ 0.5.
  const Dataset ds = build_dataset(tiny_config());
  for (const auto& g : ds.graphs) {
    for (int v = 0; v < g.num_nodes; ++v) {
      if (g.type_id[static_cast<std::size_t>(v)] == 0)  // PI
        EXPECT_NEAR(g.labels[static_cast<std::size_t>(v)], 0.5F, 0.05F);
    }
  }
}

TEST(Dataset, SplitIsDisjointAndComplete) {
  const Dataset ds = build_dataset(tiny_config());
  std::vector<gnn::CircuitGraph> train, test;
  ds.split(0.9, 11, train, test);
  EXPECT_EQ(train.size() + test.size(), ds.graphs.size());
  EXPECT_GE(test.size(), 1U);
  EXPECT_GT(train.size(), test.size());
}

TEST(Dataset, SplitDeterministicForSeed) {
  const Dataset ds = build_dataset(tiny_config());
  std::vector<gnn::CircuitGraph> tr1, te1, tr2, te2;
  ds.split(0.9, 11, tr1, te1);
  ds.split(0.9, 11, tr2, te2);
  ASSERT_EQ(te1.size(), te2.size());
  for (std::size_t i = 0; i < te1.size(); ++i)
    EXPECT_EQ(te1[i].num_nodes, te2[i].num_nodes);
}

TEST(Dataset, StatsCoverTableOneColumns) {
  const Dataset ds = build_dataset(tiny_config());
  const auto stats = dataset_stats(ds);
  ASSERT_EQ(stats.size(), 4U);
  EXPECT_EQ(stats[0].family, "EPFL");
  EXPECT_EQ(stats[1].family, "ITC99");
  for (const auto& s : stats) {
    EXPECT_GT(s.count, 0U);
    EXPECT_LE(s.min_nodes, s.max_nodes);
    EXPECT_LE(s.min_level, s.max_level);
    EXPECT_GE(s.min_nodes, 36U);   // paper envelope
    EXPECT_LE(s.max_nodes, 3214U);
    EXPECT_GE(s.min_level, 3);
    EXPECT_LE(s.max_level, 24);
  }
}

TEST(Dataset, PairedDatasetAligned) {
  const PairedDataset pd = build_paired_dataset("EPFL", 4, 5000, 17);
  EXPECT_EQ(pd.raw.size(), pd.aig.size());
  EXPECT_GE(pd.raw.size(), 2U);
  for (std::size_t i = 0; i < pd.raw.size(); ++i) {
    EXPECT_EQ(pd.raw[i].num_types, 9);
    EXPECT_EQ(pd.aig[i].num_types, 3);
    EXPECT_GT(pd.raw[i].num_nodes, 0);
    EXPECT_GT(pd.aig[i].num_nodes, 0);
  }
}

TEST(Dataset, GraphFromAigHandlesConstantOutputs) {
  // gen_squarer produces an identically-zero output bit; graph_from_aig must
  // cope by dropping it rather than throwing.
  const auto g = graph_from_aig(gen_squarer(12), 2000, 5);
  EXPECT_GT(g.num_nodes, 100);
  EXPECT_EQ(g.num_types, 3);
}

TEST(Dataset, DefaultConfigScalesWithBenchScale) {
  const auto tiny = default_dataset_config(util::BenchScale::kTiny, 1);
  const auto small = default_dataset_config(util::BenchScale::kSmall, 1);
  const auto paper = default_dataset_config(util::BenchScale::kPaper, 1);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_LE(tiny.families[f].num_subcircuits, small.families[f].num_subcircuits);
    EXPECT_LE(small.families[f].num_subcircuits, paper.families[f].num_subcircuits);
  }
  // Paper scale reproduces Table I counts exactly.
  EXPECT_EQ(paper.families[0].num_subcircuits, 828U);
  EXPECT_EQ(paper.families[1].num_subcircuits, 7560U);
  EXPECT_EQ(paper.families[2].num_subcircuits, 1281U);
  EXPECT_EQ(paper.families[3].num_subcircuits, 1155U);
}

}  // namespace
}  // namespace dg::data
