#include "data/dataset.hpp"

#include "data/generators_large.hpp"
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dg::data {
namespace {

DatasetConfig tiny_config() {
  DatasetConfig cfg = default_dataset_config(util::BenchScale::kTiny, 3);
  cfg.sim_patterns = 5000;
  return cfg;
}

TEST(Dataset, BuildsAllFamilies) {
  const Dataset ds = build_dataset(tiny_config());
  EXPECT_GE(ds.graphs.size(), 16U);
  ASSERT_EQ(ds.graphs.size(), ds.info.size());
  std::set<std::string> families;
  for (const auto& info : ds.info) families.insert(info.family);
  EXPECT_EQ(families.size(), 4U);
}

TEST(Dataset, LabelsAreProbabilities) {
  const Dataset ds = build_dataset(tiny_config());
  for (const auto& g : ds.graphs) {
    ASSERT_EQ(static_cast<int>(g.labels.size()), g.num_nodes);
    for (float label : g.labels) {
      EXPECT_GE(label, 0.0F);
      EXPECT_LE(label, 1.0F);
    }
  }
}

TEST(Dataset, PiLabelsNearHalf) {
  // Primary inputs see uniform random patterns: p ~ 0.5.
  const Dataset ds = build_dataset(tiny_config());
  for (const auto& g : ds.graphs) {
    for (int v = 0; v < g.num_nodes; ++v) {
      if (g.type_id[static_cast<std::size_t>(v)] == 0) {  // PI
        EXPECT_NEAR(g.labels[static_cast<std::size_t>(v)], 0.5F, 0.05F);
      }
    }
  }
}

TEST(Dataset, SplitIsDisjointAndComplete) {
  const Dataset ds = build_dataset(tiny_config());
  std::vector<gnn::CircuitGraph> train, test;
  ds.split(0.9, 11, train, test);
  EXPECT_EQ(train.size() + test.size(), ds.graphs.size());
  EXPECT_GE(test.size(), 1U);
  EXPECT_GT(train.size(), test.size());
}

TEST(Dataset, SplitDeterministicForSeed) {
  const Dataset ds = build_dataset(tiny_config());
  std::vector<gnn::CircuitGraph> tr1, te1, tr2, te2;
  ds.split(0.9, 11, tr1, te1);
  ds.split(0.9, 11, tr2, te2);
  ASSERT_EQ(te1.size(), te2.size());
  for (std::size_t i = 0; i < te1.size(); ++i)
    EXPECT_EQ(te1[i].num_nodes, te2[i].num_nodes);
}

/// Content fingerprint for disjointness checks: two equal graphs serialize
/// to the same bytes, two different graphs to different bytes (with
/// overwhelming probability under FNV-1a).
std::uint64_t graph_fingerprint(const gnn::CircuitGraph& g) {
  std::vector<std::uint8_t> bytes;
  g.serialize(bytes);
  return util::fnv1a_bytes(bytes.data(), bytes.size());
}

TEST(Dataset, SplitIsBitExactAndDisjointForFixedSeed) {
  const Dataset ds = build_dataset(tiny_config());
  std::multiset<std::uint64_t> all;
  for (const auto& g : ds.graphs) all.insert(graph_fingerprint(g));

  std::vector<gnn::CircuitGraph> tr1, te1, tr2, te2;
  ds.split(0.9, 23, tr1, te1);
  ds.split(0.9, 23, tr2, te2);
  ASSERT_EQ(tr1.size(), tr2.size());
  ASSERT_EQ(te1.size(), te2.size());
  for (std::size_t i = 0; i < tr1.size(); ++i)
    EXPECT_TRUE(gnn::bit_equal(tr1[i], tr2[i])) << "train " << i;
  for (std::size_t i = 0; i < te1.size(); ++i)
    EXPECT_TRUE(gnn::bit_equal(te1[i], te2[i])) << "test " << i;

  // Train/test partition the dataset: together they reproduce the full
  // multiset of fingerprints, and (duplicates aside) share no graph.
  std::multiset<std::uint64_t> split_union;
  std::set<std::uint64_t> train_set, test_set;
  for (const auto& g : tr1) {
    const std::uint64_t f = graph_fingerprint(g);
    split_union.insert(f);
    train_set.insert(f);
  }
  for (const auto& g : te1) {
    const std::uint64_t f = graph_fingerprint(g);
    split_union.insert(f);
    test_set.insert(f);
  }
  EXPECT_EQ(split_union, all);
  if (all.size() == std::set<std::uint64_t>(all.begin(), all.end()).size()) {
    for (const std::uint64_t f : test_set)
      EXPECT_EQ(train_set.count(f), 0U) << "graph in both train and test";
  }
}

TEST(Dataset, SplitGuardsDegenerateInputs) {
  std::vector<gnn::CircuitGraph> train, test;

  // Empty dataset: both halves empty, no crash.
  const Dataset empty;
  empty.split(0.9, 1, train, test);
  EXPECT_TRUE(train.empty());
  EXPECT_TRUE(test.empty());

  const Dataset ds = build_dataset(tiny_config());
  // Fraction 0: everything lands in test.
  ds.split(0.0, 1, train, test);
  EXPECT_TRUE(train.empty());
  EXPECT_EQ(test.size(), ds.graphs.size());
  // Fraction 1: everything lands in train.
  ds.split(1.0, 1, train, test);
  EXPECT_EQ(train.size(), ds.graphs.size());
  EXPECT_TRUE(test.empty());
  // Out-of-range fractions clamp instead of over/under-flowing.
  ds.split(-0.5, 1, train, test);
  EXPECT_TRUE(train.empty());
  EXPECT_EQ(test.size(), ds.graphs.size());
  ds.split(1.5, 1, train, test);
  EXPECT_EQ(train.size(), ds.graphs.size());
  EXPECT_TRUE(test.empty());
}

TEST(Dataset, StatsCoverTableOneColumns) {
  const Dataset ds = build_dataset(tiny_config());
  const auto stats = dataset_stats(ds);
  ASSERT_EQ(stats.size(), 4U);
  EXPECT_EQ(stats[0].family, "EPFL");
  EXPECT_EQ(stats[1].family, "ITC99");
  for (const auto& s : stats) {
    EXPECT_GT(s.count, 0U);
    EXPECT_LE(s.min_nodes, s.max_nodes);
    EXPECT_LE(s.min_level, s.max_level);
    EXPECT_GE(s.min_nodes, 36U);   // paper envelope
    EXPECT_LE(s.max_nodes, 3214U);
    EXPECT_GE(s.min_level, 3);
    EXPECT_LE(s.max_level, 24);
  }
}

TEST(Dataset, PairedDatasetAligned) {
  const PairedDataset pd = build_paired_dataset("EPFL", 4, 5000, 17);
  EXPECT_EQ(pd.raw.size(), pd.aig.size());
  EXPECT_GE(pd.raw.size(), 2U);
  for (std::size_t i = 0; i < pd.raw.size(); ++i) {
    EXPECT_EQ(pd.raw[i].num_types, 9);
    EXPECT_EQ(pd.aig[i].num_types, 3);
    EXPECT_GT(pd.raw[i].num_nodes, 0);
    EXPECT_GT(pd.aig[i].num_nodes, 0);
  }
}

TEST(Dataset, GraphFromAigHandlesConstantOutputs) {
  // gen_squarer produces an identically-zero output bit; graph_from_aig must
  // cope by dropping it rather than throwing.
  const auto g = graph_from_aig(gen_squarer(12), 2000, 5);
  EXPECT_GT(g.num_nodes, 100);
  EXPECT_EQ(g.num_types, 3);
}

TEST(Dataset, DefaultConfigScalesWithBenchScale) {
  const auto tiny = default_dataset_config(util::BenchScale::kTiny, 1);
  const auto small = default_dataset_config(util::BenchScale::kSmall, 1);
  const auto paper = default_dataset_config(util::BenchScale::kPaper, 1);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_LE(tiny.families[f].num_subcircuits, small.families[f].num_subcircuits);
    EXPECT_LE(small.families[f].num_subcircuits, paper.families[f].num_subcircuits);
  }
  // Paper scale reproduces Table I counts exactly.
  EXPECT_EQ(paper.families[0].num_subcircuits, 828U);
  EXPECT_EQ(paper.families[1].num_subcircuits, 7560U);
  EXPECT_EQ(paper.families[2].num_subcircuits, 1281U);
  EXPECT_EQ(paper.families[3].num_subcircuits, 1155U);
}

}  // namespace
}  // namespace dg::data
