#include "netlist/bench_io.hpp"

#include "data/generators_small.hpp"
#include "sim/bitsim.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace dg::netlist {
namespace {

TEST(BenchIo, ParseSimple) {
  const std::string text =
      "# comment line\n"
      "INPUT(a)\n"
      "INPUT(b)\n"
      "OUTPUT(f)\n"
      "f = NAND(a, b)\n";
  std::string err;
  auto nl = read_bench(text, &err);
  ASSERT_TRUE(nl.has_value()) << err;
  EXPECT_EQ(nl->inputs().size(), 2U);
  EXPECT_EQ(nl->outputs().size(), 1U);
  EXPECT_EQ(nl->gate(nl->outputs()[0]).type, GateType::kNand);
}

TEST(BenchIo, OutOfOrderDefinitions) {
  const std::string text =
      "INPUT(a)\n"
      "OUTPUT(g)\n"
      "g = NOT(f)\n"    // uses f before its definition
      "f = BUF(a)\n";
  std::string err;
  auto nl = read_bench(text, &err);
  ASSERT_TRUE(nl.has_value()) << err;
  EXPECT_EQ(nl->gate(nl->outputs()[0]).type, GateType::kNot);
}

TEST(BenchIo, RejectsUndefinedSignal) {
  std::string err;
  EXPECT_FALSE(read_bench("OUTPUT(f)\nf = AND(x, y)\n", &err).has_value());
}

TEST(BenchIo, RejectsUnknownGate) {
  std::string err;
  EXPECT_FALSE(read_bench("INPUT(a)\nf = FROB(a)\n", &err).has_value());
  EXPECT_NE(err.find("unknown gate"), std::string::npos);
}

TEST(BenchIo, RejectsCycle) {
  const std::string text =
      "INPUT(a)\n"
      "x = AND(a, y)\n"
      "y = AND(a, x)\n";
  std::string err;
  EXPECT_FALSE(read_bench(text, &err).has_value());
  EXPECT_NE(err.find("cyclic"), std::string::npos);
}

TEST(BenchIo, AcceptsAliases) {
  std::string err;
  auto nl = read_bench("INPUT(a)\nf = INV(a)\ng = BUFF(a)\nOUTPUT(f)\nOUTPUT(g)\n", &err);
  ASSERT_TRUE(nl.has_value()) << err;
  EXPECT_EQ(nl->gate(nl->outputs()[0]).type, GateType::kNot);
  EXPECT_EQ(nl->gate(nl->outputs()[1]).type, GateType::kBuf);
}

TEST(BenchIo, RoundTripPreservesSimulation) {
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist original = data::gen_iwls_like(rng);
    const std::string text = write_bench(original);
    std::string err;
    auto parsed = read_bench(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    ASSERT_EQ(parsed->inputs().size(), original.inputs().size());
    ASSERT_EQ(parsed->outputs().size(), original.outputs().size());

    std::vector<std::uint64_t> patterns(original.inputs().size());
    for (auto& w : patterns) w = rng.next_u64();
    const auto w1 = sim::simulate_netlist(original, patterns);
    const auto w2 = sim::simulate_netlist(*parsed, patterns);
    for (std::size_t o = 0; o < original.outputs().size(); ++o) {
      EXPECT_EQ(w1[static_cast<std::size_t>(original.outputs()[o])],
                w2[static_cast<std::size_t>(parsed->outputs()[o])]);
    }
  }
}

TEST(BenchIo, CaseInsensitiveGateNames) {
  std::string err;
  auto nl = read_bench("INPUT(a)\nINPUT(b)\nf = nand(a, b)\nOUTPUT(f)\n", &err);
  ASSERT_TRUE(nl.has_value()) << err;
  EXPECT_EQ(nl->gate(nl->outputs()[0]).type, GateType::kNand);
}

}  // namespace
}  // namespace dg::netlist
