// The observability layer: fixed-bucket histograms must place boundary
// values deterministically and merge bit-identically under any sharding;
// the registry must hand out stable references, honor callback tokens, and
// survive concurrent recording (this suite runs under ASan AND TSan in CI);
// the trace ring must overwrite oldest-first and export valid Chrome
// trace-event JSON; and — the contract everything else rests on — inference
// outputs must be bitwise identical with metrics/tracing on or off.
#include "obs/obs.hpp"

#include "core/deepgate.hpp"
#include "data/generators_large.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

namespace dg::obs {
namespace {

// Shrink the trace ring before the lazily-constructed sink ever exists so
// the overwrite test can fill it cheaply. Static init runs before any test
// (and before the sink's first use anywhere in this binary).
const bool g_trace_buf_env = [] {
  ::setenv("DEEPGATE_TRACE_BUF", "64", 1);
  return true;
}();

// Every test in this binary assumes recording is on regardless of the
// environment; tests that exercise the off path restore this.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_set_enabled(true);
    trace_set_enabled(false);
  }
  void TearDown() override {
    metrics_set_enabled(true);
    trace_set_enabled(false);
  }
};

// -- Histogram bucket placement ------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundaryValues) {
  Histogram h(latency_buckets());
  const std::vector<double>& bounds = h.bounds();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 1e3);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    ASSERT_LT(bounds[i - 1], bounds[i]) << "bounds must be strictly ascending";

  // A value exactly on a bound lands in the bucket whose LOWER bound it is:
  // cell 0 holds v < bounds[0], cell j >= 1 holds bounds[j-1] <= v < bounds[j].
  h.record(bounds[0]);                                  // -> cell 1
  h.record(std::nextafter(bounds[0], 0.0));             // -> cell 0 (underflow)
  h.record(bounds[4]);                                  // -> cell 5
  h.record(std::nextafter(bounds[4], 0.0));             // -> cell 4
  h.record(bounds.back());                              // -> last cell (overflow)
  h.record(bounds.back() * 100.0);                      // -> last cell
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), bounds.size() + 1);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[4], 1u);
  EXPECT_EQ(snap.counts[5], 1u);
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_EQ(snap.count, 6u);
}

TEST_F(ObsTest, HistogramSumUsesIntegerTicks) {
  Histogram h(latency_buckets());  // tick = 1 ns
  h.record(1.5e-3);
  h.record(2.5e-3);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.sum_ticks, 4000000u);  // exactly 4 ms in ns ticks
  EXPECT_DOUBLE_EQ(snap.sum(), 4e-3);
  EXPECT_DOUBLE_EQ(snap.mean(), 2e-3);
}

// -- Quantile edge cases -------------------------------------------------------

TEST_F(ObsTest, QuantileEdgeCases) {
  Histogram h(latency_buckets());
  // Empty: every quantile is 0.
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 0.0);

  // Single sample: every quantile (including q=0 and q=1) reports the upper
  // bound of the one occupied bucket.
  h.record(2e-5);
  const HistogramSnapshot one = h.snapshot();
  const double only = one.quantile(0.5);
  EXPECT_GE(only, 2e-5);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), only);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), only);
  EXPECT_DOUBLE_EQ(one.quantile(-3.0), only);  // q clamps to [0, 1]
  EXPECT_DOUBLE_EQ(one.quantile(7.0), only);

  // All samples in one bucket: p50 == p95 == p99.
  Histogram same(latency_buckets());
  for (int i = 0; i < 100; ++i) same.record(3.3e-4);
  const HistogramSnapshot snap = same.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), snap.quantile(0.95));
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), snap.quantile(0.99));

  // Underflow/overflow saturate at the layout edges.
  Histogram under(latency_buckets());
  under.record(1e-9);
  EXPECT_DOUBLE_EQ(under.snapshot().quantile(0.5), under.bounds().front());
  Histogram over(latency_buckets());
  over.record(1e9);
  EXPECT_DOUBLE_EQ(over.snapshot().quantile(0.5), over.bounds().back());
}

// -- Merge: exact associativity under any sharding -----------------------------

// The same sample stream recorded into 1, 2, 4, or 8 shard histograms and
// merged in fixed index order must produce bit-identical cells — counts,
// total, and the integer tick sum — hence bit-identical quantiles. This is
// what makes per-thread recording deterministic at any DEEPGATE_THREADS.
TEST_F(ObsTest, MergeIsBitIdenticalAcrossShardPartitions) {
  // Deterministic values spanning underflow to overflow (LCG, no libc rand).
  std::vector<double> values;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) / 9007199254740992.0;  // [0,1)
    values.push_back(1e-8 * std::pow(10.0, u * 13.0));  // 1e-8 .. 1e5 log-uniform
  }

  const auto shard_and_merge = [&](std::size_t shards) {
    std::vector<std::unique_ptr<Histogram>> hs;
    for (std::size_t s = 0; s < shards; ++s)
      hs.push_back(std::make_unique<Histogram>(latency_buckets()));
    for (std::size_t i = 0; i < values.size(); ++i)
      hs[i % shards]->record(values[i]);
    HistogramSnapshot merged = hs[0]->snapshot();
    for (std::size_t s = 1; s < shards; ++s) merged.merge(hs[s]->snapshot());
    return merged;
  };

  const HistogramSnapshot ref = shard_and_merge(1);
  EXPECT_EQ(ref.count, values.size());
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const HistogramSnapshot got = shard_and_merge(shards);
    EXPECT_EQ(got.counts, ref.counts) << shards << " shards";
    EXPECT_EQ(got.count, ref.count) << shards << " shards";
    EXPECT_EQ(got.sum_ticks, ref.sum_ticks) << shards << " shards";
    // Bit-identical derived statistics, not just approximately equal.
    EXPECT_EQ(got.quantile(0.50), ref.quantile(0.50)) << shards << " shards";
    EXPECT_EQ(got.quantile(0.95), ref.quantile(0.95)) << shards << " shards";
    EXPECT_EQ(got.quantile(0.99), ref.quantile(0.99)) << shards << " shards";
    EXPECT_EQ(got.sum(), ref.sum()) << shards << " shards";
  }

  // Mismatched layouts are ignored defensively, not corrupted.
  HistogramSnapshot merged = ref;
  Histogram other(size_buckets());
  other.record(7.0);
  merged.merge(other.snapshot());
  EXPECT_EQ(merged.count, ref.count);
}

// -- Counter / gauge / enable switch -------------------------------------------

TEST_F(ObsTest, MetricsDisabledDropsRecordingsBitwise) {
  Counter c;
  Gauge g;
  Histogram h(size_buckets());
  c.add(3);
  g.set(11);
  h.record(5.0);
  metrics_set_enabled(false);
  c.add(100);
  g.set(-7);
  g.add(1);
  h.record(5.0);
  metrics_set_enabled(true);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(g.value(), 11);
  EXPECT_EQ(h.count(), 1u);
}

// -- Registry ------------------------------------------------------------------

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  Counter& a = counter("obs_test.stable");
  Counter& b = counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);

  // First registration fixes the histogram layout; later opts are ignored.
  Histogram& h1 = histogram("obs_test.layout", latency_buckets());
  Histogram& h2 = histogram("obs_test.layout", size_buckets());
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.bounds().front(), 1e-6);
}

TEST_F(ObsTest, RegistryCallbackTokensPreventStaleRemoval) {
  const std::uint64_t token1 =
      registry().set_callback("obs_test.cb", [] { return 1.0; });
  // A second owner takes over the name; the first owner's token is stale.
  const std::uint64_t token2 =
      registry().set_callback("obs_test.cb", [] { return 2.0; });
  EXPECT_NE(token1, token2);
  registry().remove_callback("obs_test.cb", token1);  // stale: must be a no-op
  Snapshot snap = snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge_value("obs_test.cb"), 2.0);
  registry().remove_callback("obs_test.cb", token2);  // current: removes
  snap = snapshot();
  bool present = false;
  for (const auto& [name, v] : snap.gauges) present = present || name == "obs_test.cb";
  EXPECT_FALSE(present);

  // A throwing callback yields no sample instead of taking the process down.
  const std::uint64_t token3 = registry().set_callback(
      "obs_test.cb_throws", []() -> double { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(snapshot());
  registry().remove_callback("obs_test.cb_throws", token3);
}

TEST_F(ObsTest, SnapshotIsSortedAndDerivesHitRates) {
  counter("obs_test.lookup.hits").add(3);
  counter("obs_test.lookup.misses").add(1);
  const Snapshot snap = snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_TRUE(std::is_sorted(
      snap.gauges.begin(), snap.gauges.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_DOUBLE_EQ(snap.gauge_value("obs_test.lookup.hit_rate"), 0.75);
  // Well-known serving keys are pre-registered: present (possibly zero) in
  // every snapshot, so downstream consumers see a stable key set.
  EXPECT_NE(snap.find_histogram("serve.latency_seconds"), nullptr);
  // The JSON rendering parses as one object with the three sections.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.lookup.hit_rate"), std::string::npos);
}

// TSan/ASan target: concurrent registration, recording, and snapshotting of
// the same names must be clean and must not lose counts.
TEST_F(ObsTest, RegistryConcurrentRecordingIsExact) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter("obs_test.conc.count").add();
        histogram("obs_test.conc.hist", latency_buckets()).record(1e-4);
        if (i % 256 == 0) (void)snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter("obs_test.conc.count").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram("obs_test.conc.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// -- Trace ring ----------------------------------------------------------------

TEST_F(ObsTest, TraceDisabledRecordsNothing) {
  trace_clear();
  trace_instant("obs_test.noop", "test");
  { TraceSpan span("obs_test.noop_span", "test"); }
  EXPECT_TRUE(trace_events().empty());
}

TEST_F(ObsTest, TraceRingOverwritesOldestFirst) {
  trace_set_enabled(true);
  trace_clear();
  const std::size_t cap = trace_sink_stats().capacity;
  ASSERT_EQ(cap, 64u);  // g_trace_buf_env shrank the ring for this binary
  const TraceSinkStats before = trace_sink_stats();
  for (std::uint64_t i = 1; i <= cap + 10; ++i) trace_instant("obs_test.ev", "test", i);
  const TraceSinkStats after = trace_sink_stats();
  EXPECT_EQ(after.size, cap);
  EXPECT_EQ(after.recorded - before.recorded, cap + 10);
  EXPECT_EQ(after.dropped - before.dropped, 10u);

  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), cap);
  // Oldest first, the 10 oldest overwritten: ids are 11 .. cap+10 ascending.
  EXPECT_EQ(events.front().id, 11u);
  EXPECT_EQ(events.back().id, cap + 10);
  for (std::size_t i = 1; i < events.size(); ++i)
    ASSERT_EQ(events[i].id, events[i - 1].id + 1);
  trace_clear();
  EXPECT_TRUE(trace_events().empty());
  // clear() drops residency, not history: recorded/dropped keep accumulating.
  EXPECT_EQ(trace_sink_stats().recorded, after.recorded);
  EXPECT_EQ(trace_sink_stats().dropped, after.dropped);
}

TEST_F(ObsTest, TraceSpanAndChromeJsonExport) {
  trace_set_enabled(true);
  trace_clear();
  const std::uint64_t id = next_trace_id();
  const std::uint64_t ref = next_trace_id();
  EXPECT_NE(id, ref);
  {
    TraceSpan span("obs_test.span", "test", id, ref);
    span.set_detail("hit");
  }
  trace_instant("obs_test.mark", "test");
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "obs_test.span");
  EXPECT_GE(events[0].dur_ns, 0);   // complete event
  EXPECT_EQ(events[0].id, id);
  EXPECT_EQ(events[0].ref, ref);
  EXPECT_STREQ(events[0].detail, "hit");
  EXPECT_EQ(events[1].dur_ns, -1);  // instant event
  EXPECT_LE(events[0].start_ns, events[1].start_ns);

  std::ostringstream os;
  ASSERT_TRUE(dump_trace(os));
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("\"detail\": \"hit\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser (CI
  // additionally runs python3 -m json.tool over a real export).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// -- The bitwise-neutrality contract -------------------------------------------

// Metrics and tracing only observe: the same engine over the same graph must
// produce bit-identical probabilities and embeddings with DEEPGATE_METRICS /
// DEEPGATE_TRACE on or off, in every combination.
TEST_F(ObsTest, InferenceIsBitwiseIdenticalWithObservabilityOnOrOff) {
  deepgate::Options options;
  options.model.dim = 12;
  options.model.iterations = 3;
  options.model.mlp_hidden = 8;
  options.model.seed = 11;
  const deepgate::Engine engine(options);
  const gnn::CircuitGraph g = deepgate::prepare(data::gen_squarer(5), 2000, 6);

  metrics_set_enabled(true);
  trace_set_enabled(true);
  trace_clear();
  const std::vector<float> probs_on = engine.predict_probabilities(g);
  const nn::Matrix emb_on = engine.embeddings(g);

  metrics_set_enabled(false);
  trace_set_enabled(false);
  const std::vector<float> probs_off = engine.predict_probabilities(g);
  const nn::Matrix emb_off = engine.embeddings(g);

  metrics_set_enabled(true);
  trace_set_enabled(false);
  const std::vector<float> probs_mixed = engine.predict_probabilities(g);

  EXPECT_EQ(probs_on, probs_off);
  EXPECT_EQ(probs_on, probs_mixed);
  ASSERT_TRUE(emb_on.same_shape(emb_off));
  EXPECT_TRUE(std::equal(emb_on.data(), emb_on.data() + emb_on.size(), emb_off.data()));
  trace_clear();
}

}  // namespace
}  // namespace dg::obs
