#include "analysis/cop.hpp"

#include "aig/gate_graph.hpp"
#include "sim/probability.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::analysis {
namespace {

using namespace dg::aig;

TEST(Cop, ExactOnFanoutFreeTree) {
  // On a tree (no reconvergence) COP equals the exact probability.
  Aig a;
  std::vector<Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(make_lit(a.add_input(), false));
  const Lit left = a.add_and(ins[0], lit_not(ins[1]));
  const Lit right = a.add_and(ins[2], ins[3]);
  const Lit top = a.add_and(lit_not(left), right);
  a.add_output(top);
  const auto exact = sim::exact_aig_probabilities(a);
  const auto cop = cop_aig_probabilities(a);
  for (Var v = 1; v < a.num_vars(); ++v) EXPECT_NEAR(cop[v], exact[v], 1e-12);
}

TEST(Cop, WrongUnderReconvergence) {
  // f = x & !x (via explicit sharing) is exactly 0 but COP says 0.25.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(lit_not(x), y);
  const Lit f = a.add_and(n1, n2);  // always 0, but no local rule proves it
  a.add_output(f);
  const auto cop = cop_aig_probabilities(a);
  const auto exact = sim::exact_aig_probabilities(a);
  EXPECT_DOUBLE_EQ(exact[lit_var(f)], 0.0);
  EXPECT_GT(cop[lit_var(f)], 0.05);  // independence assumption overestimates
}

TEST(Cop, GateGraphMatchesAigVersion) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit f = a.make_or(a.add_and(x, y), lit_not(y));
  a.add_output(f);
  const GateGraph g = to_gate_graph(a);
  const auto cop_g = cop_probabilities(g);
  const auto cop_a = cop_aig_probabilities(a);
  // Compare on outputs.
  double pa = cop_a[lit_var(f)];
  if (lit_neg(f)) pa = 1.0 - pa;
  EXPECT_NEAR(cop_g[static_cast<std::size_t>(g.outputs[0])], pa, 1e-12);
}

TEST(Cop, NetlistGateFormulas) {
  using netlist::GateType;
  netlist::Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  const int c = nl.add_input();
  const int and3 = nl.add_gate(GateType::kAnd, {a, b, c});
  const int or2 = nl.add_gate(GateType::kOr, {a, b});
  const int xor3 = nl.add_gate(GateType::kXor, {a, b, c});
  const int nand2 = nl.add_gate(GateType::kNand, {a, b});
  nl.mark_output(and3);
  const auto p = cop_netlist_probabilities(nl);
  EXPECT_NEAR(p[static_cast<std::size_t>(and3)], 0.125, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(or2)], 0.75, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(xor3)], 0.5, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(nand2)], 0.75, 1e-12);
}

TEST(Cop, ProbabilitiesInUnitInterval) {
  Aig a;
  std::vector<Lit> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(make_lit(a.add_input(), false));
  for (int i = 0; i < 30; ++i) {
    const Lit p = pool[static_cast<std::size_t>(i) % pool.size()];
    const Lit q = pool[(static_cast<std::size_t>(i) * 7 + 1) % pool.size()];
    if (p != q && p != lit_not(q)) pool.push_back(a.add_and(p, lit_not(q)));
  }
  a.add_output(pool.back());
  for (double p : cop_aig_probabilities(a)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace dg::analysis
