#include "nn/serialize.hpp"

#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dg::nn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripExactValues) {
  util::Rng rng(1);
  Linear lin(4, 3, rng);
  NamedParams params;
  lin.collect(params, "lin");
  const std::string path = temp_path("dg_roundtrip.dgtp");
  ASSERT_TRUE(save_params(path, params));

  // Perturb, then load back — values must be bit-exact.
  const Matrix original = params[0].second.value();
  params[0].second.mutable_value().fill(0.0F);
  ASSERT_TRUE(load_params(path, params));
  const Matrix& restored = params[0].second.value();
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(original.data()[i], restored.data()[i]);
  std::remove(path.c_str());
}

TEST(Serialize, GruFullStateRoundTrip) {
  util::Rng rng(2);
  GruCell gru(5, 7, rng);
  NamedParams params;
  gru.collect(params, "gru");
  const std::string path = temp_path("dg_gru.dgtp");
  ASSERT_TRUE(save_params(path, params));
  util::Rng rng2(99);
  GruCell gru2(5, 7, rng2);
  NamedParams params2;
  gru2.collect(params2, "gru");
  ASSERT_TRUE(load_params(path, params2));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Matrix& a = params[i].second.value();
    const Matrix& b = params2[i].second.value();
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a.data()[k], b.data()[k]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingNameFails) {
  util::Rng rng(3);
  Linear lin(2, 2, rng);
  NamedParams params;
  lin.collect(params, "a");
  const std::string path = temp_path("dg_missing.dgtp");
  ASSERT_TRUE(save_params(path, params));

  Linear other(2, 2, rng);
  NamedParams renamed;
  other.collect(renamed, "b");  // names differ
  EXPECT_FALSE(load_params(path, renamed));
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchFails) {
  util::Rng rng(4);
  Linear lin(2, 2, rng);
  NamedParams params;
  lin.collect(params, "lin");
  const std::string path = temp_path("dg_shape.dgtp");
  ASSERT_TRUE(save_params(path, params));

  Linear bigger(3, 3, rng);
  NamedParams params2;
  bigger.collect(params2, "lin");
  EXPECT_FALSE(load_params(path, params2));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("dg_garbage.dgtp");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  util::Rng rng(5);
  Linear lin(2, 2, rng);
  NamedParams params;
  lin.collect(params, "lin");
  EXPECT_FALSE(load_params(path, params));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails) {
  util::Rng rng(6);
  Linear lin(2, 2, rng);
  NamedParams params;
  lin.collect(params, "lin");
  EXPECT_FALSE(load_params("/nonexistent/path/x.dgtp", params));
}

}  // namespace
}  // namespace dg::nn
