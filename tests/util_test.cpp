#include "util/env.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

namespace dg::util {
namespace {

void benchmark_guard(double& v) { asm volatile("" : "+m"(v)); }

// -- Logging -------------------------------------------------------------------

// DEEPGATE_LOG_LEVEL resolves lazily on the FIRST log_level() query and is
// cached for the process, so this suite is declared first in this file: it
// must run before any test that logs (Env.ScaleParsing warns on a bogus
// scale, which would consume the one-shot resolution).
TEST(Log, LevelEnvStrictParseRejectsUnknownValues) {
  ::setenv("DEEPGATE_LOG_LEVEL", "loud", 1);
  // Strict parse: an unknown value warns and keeps the default info — it
  // must not be prefix-matched or silently accepted.
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  ::unsetenv("DEEPGATE_LOG_LEVEL");
}

TEST(Log, SetLogLevelOverridesAndFilters) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold rate-limited warns return false WITHOUT consuming the
  // limiter's token.
  LogRateLimit limit(3600.0);
  EXPECT_FALSE(log_warn_limited(limit, "suppressed by level"));
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_warn_limited(limit, "util_test: expected warn line"));
  set_log_level(LogLevel::kInfo);
}

TEST(Log, RateLimitAllowsOncePerIntervalAndCountsSuppressed) {
  LogRateLimit limit(0.05);  // 50 ms
  std::uint64_t suppressed = 123;
  EXPECT_TRUE(limit.allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(limit.allow());
  EXPECT_FALSE(limit.allow());
  EXPECT_FALSE(limit.allow());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(limit.allow(&suppressed));
  EXPECT_EQ(suppressed, 3u);  // the three rejected calls are reported

  // A zero interval never limits (and never reports suppressions).
  LogRateLimit off(0.0);
  for (int i = 0; i < 4; ++i) {
    suppressed = 99;
    EXPECT_TRUE(off.allow(&suppressed));
    EXPECT_EQ(suppressed, 0u);
  }
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Model", "Error"});
  t.add_row({"GCN", "0.1386"});
  t.add_row({"DeepGate", "0.0204"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("DeepGate"), std::string::npos);
  // Every non-rule line should have the same width prefix alignment: the
  // second column starts at the same offset in header and rows.
  const auto header_pos = out.find("Error");
  const auto row_pos = out.find("0.0204");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable t({"A"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  const std::string out = t.render();
  // Header rule + explicit rule.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("---", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_GE(rules, 2);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_fixed(0.020401, 4), "0.0204");
  EXPECT_EQ(fmt_fixed(1.0, 2), "1.00");
}

TEST(Format, KiloSuffix) {
  EXPECT_EQ(fmt_kilo(999), "999");
  EXPECT_EQ(fmt_kilo(23700), "23.7K");
  EXPECT_EQ(fmt_kilo(47300), "47.3K");
}

TEST(Env, ScaleParsing) {
  ::setenv("DEEPGATE_SCALE", "tiny", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kTiny);
  ::setenv("DEEPGATE_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kPaper);
  ::setenv("DEEPGATE_SCALE", "bogus", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kSmall);
  ::unsetenv("DEEPGATE_SCALE");
  EXPECT_EQ(bench_scale(), BenchScale::kSmall);
}

TEST(Env, IntRejectsPartiallyConsumedValues) {
  ::setenv("DEEPGATE_TEST_INT", "4", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", -1), 4);
  ::setenv("DEEPGATE_TEST_INT", "-17", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", -1), -17);
  // Trailing garbage must not silently become the numeric prefix.
  ::setenv("DEEPGATE_TEST_INT", "4x", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", -1), -1);
  ::setenv("DEEPGATE_TEST_INT", "1e3", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", -1), -1);
  ::setenv("DEEPGATE_TEST_INT", "3.5", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", -1), -1);
  ::setenv("DEEPGATE_TEST_INT", "", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", 7), 7);
  ::setenv("DEEPGATE_TEST_INT", "nope", 1);
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", 7), 7);
  ::unsetenv("DEEPGATE_TEST_INT");
  EXPECT_EQ(env_int("DEEPGATE_TEST_INT", 9), 9);
}

TEST(Env, DoubleRejectsPartiallyConsumedValues) {
  ::setenv("DEEPGATE_TEST_DBL", "0.5", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", -1.0), 0.5);
  ::setenv("DEEPGATE_TEST_DBL", "-2.25", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", -1.0), -2.25);
  // Scientific notation is a legal double, unlike for env_int.
  ::setenv("DEEPGATE_TEST_DBL", "1e3", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", -1.0), 1000.0);
  // Trailing garbage must not silently become the numeric prefix.
  ::setenv("DEEPGATE_TEST_DBL", "0.5x", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", -1.0), -1.0);
  ::setenv("DEEPGATE_TEST_DBL", "1.2.3", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", -1.0), -1.0);
  ::setenv("DEEPGATE_TEST_DBL", "", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", 7.5), 7.5);
  ::setenv("DEEPGATE_TEST_DBL", "nope", 1);
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", 7.5), 7.5);
  ::unsetenv("DEEPGATE_TEST_DBL");
  EXPECT_EQ(env_double("DEEPGATE_TEST_DBL", 9.75), 9.75);
}

TEST(Env, EpochOverride) {
  ::unsetenv("DEEPGATE_EPOCHS");
  EXPECT_EQ(env_epochs(12), 12);
  ::setenv("DEEPGATE_EPOCHS", "3", 1);
  EXPECT_EQ(env_epochs(12), 3);
  ::unsetenv("DEEPGATE_EPOCHS");
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_guard(sink);
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace dg::util
