#include "aig/cone.hpp"

#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "sim/probability.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace dg::aig {
namespace {

TEST(Cone, FullConeIsWholeTfi) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(n1, z);
  const Lit other = a.add_and(y, z);  // not in the cone of n2's root
  a.add_output(n2);
  a.add_output(other);

  ConeOptions opts;
  const Aig cone = extract_cone(a, {n2}, opts);
  EXPECT_EQ(cone.num_ands(), 2U);  // n1, n2 only
  EXPECT_EQ(cone.num_inputs(), 3U);
  EXPECT_EQ(cone.num_outputs(), 1U);
}

TEST(Cone, BudgetCreatesCutInputs) {
  // Chain of 10 ANDs; with budget 3 the cut frontier becomes fresh PIs.
  Aig a;
  Lit acc = make_lit(a.add_input(), false);
  for (int i = 0; i < 10; ++i) acc = a.add_and(acc, make_lit(a.add_input(), false));
  a.add_output(acc);

  ConeOptions opts;
  opts.max_ands = 3;
  const Aig cone = extract_cone(a, {acc}, opts);
  EXPECT_LE(cone.num_ands(), 3U);
  EXPECT_GE(cone.num_inputs(), 2U);  // cut literals became inputs
}

TEST(Cone, FunctionPreservedWhenComplete) {
  // If the cone captures the entire TFI, the extracted circuit computes the
  // same function (verified by exhaustive probability comparison).
  util::Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    Aig a;
    std::vector<Lit> ins;
    for (int i = 0; i < 6; ++i) ins.push_back(make_lit(a.add_input(), false));
    // random 3-level structure
    std::vector<Lit> pool = ins;
    for (int i = 0; i < 12; ++i) {
      const Lit p = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
      Lit q = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
      if (rng.next_bool()) q = lit_not(q);
      pool.push_back(a.add_and(p, q));
    }
    // Pick the deepest genuine AND node as root (the builder's local rules
    // may collapse later entries to constants or inputs).
    Lit root = kLitFalse;
    for (auto it = pool.rbegin(); it != pool.rend(); ++it) {
      if (a.is_and(lit_var(*it))) {
        root = *it;
        break;
      }
    }
    if (!a.is_and(lit_var(root))) continue;
    a.add_output(root);

    ConeOptions opts;  // unlimited budget
    opts.max_ands = 1000;
    const Aig cone = extract_cone(a, {root}, opts);

    const auto p_full = sim::exact_aig_probabilities(a);
    const auto p_cone = sim::exact_aig_probabilities(cone);
    const Lit co = cone.outputs()[0];
    double pf = p_full[lit_var(root)];
    if (lit_neg(root)) pf = 1.0 - pf;
    double pc = p_cone[lit_var(co)];
    if (lit_neg(co)) pc = 1.0 - pc;
    // Cone inputs may be a superset (unused extra inputs don't change the
    // output probability).
    EXPECT_NEAR(pf, pc, 1e-9);
  }
}

TEST(Cone, MultipleRootsShareLogic) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit shared = a.add_and(x, y);
  const Lit r1 = a.add_and(shared, x);
  const Lit r2 = a.add_and(shared, y);
  a.add_output(r1);
  a.add_output(r2);
  ConeOptions opts;
  const Aig cone = extract_cone(a, {r1, r2}, opts);
  EXPECT_EQ(cone.num_outputs(), 2U);
  EXPECT_EQ(cone.num_ands(), 3U);  // shared node extracted once
}

TEST(Cone, DepthCapTruncates) {
  Aig a;
  Lit acc = make_lit(a.add_input(), false);
  for (int i = 0; i < 20; ++i) acc = a.add_and(acc, make_lit(a.add_input(), false));
  a.add_output(acc);
  ConeOptions opts;
  opts.max_ands = 1000;
  opts.max_depth = 5;
  const Aig cone = extract_cone(a, {acc}, opts);
  EXPECT_LE(cone.depth(), 6);
}

TEST(Cone, GeneratedCircuitsYieldValidCones) {
  util::Rng rng(11);
  const Aig base = netlist::to_aig(data::gen_itc_like(rng));
  ConeOptions opts;
  opts.max_ands = 50;
  const auto levels = base.levels();
  for (int t = 0; t < 5; ++t) {
    // pick a random AND var
    Var v = 0;
    do {
      v = static_cast<Var>(rng.next_below(base.num_vars()));
    } while (!base.is_and(v));
    const Aig cone = extract_cone(base, {make_lit(v, false)}, opts);
    EXPECT_GE(cone.num_ands(), 1U);
    EXPECT_LE(cone.num_ands(), 50U);
    EXPECT_EQ(cone.num_outputs(), 1U);
  }
}

}  // namespace
}  // namespace dg::aig
