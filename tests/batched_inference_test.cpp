// Batched multi-graph inference: level-merged super-graphs must reproduce
// the single-graph path — to 1e-5 for heterogeneous batches across all four
// Table II model families, and bit-exactly for a batch of one.
#include "core/batch_runner.hpp"
#include "core/deepgate.hpp"
#include "data/generators_large.hpp"
#include "data/generators_small.hpp"
#include "gnn/merge_cache.hpp"
#include "netlist/to_aig.hpp"
#include "sim/probability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

namespace dg {
namespace {

using gnn::AggKind;
using gnn::CircuitGraph;
using gnn::ModelConfig;
using gnn::ModelFamily;
using gnn::ModelSpec;

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.dim = 12;
  cfg.iterations = 3;
  cfg.mlp_hidden = 8;
  cfg.seed = 11;
  return cfg;
}

/// Heterogeneous AIG workload: different depths, with/without skip edges,
/// constant-free and constant-collapsed cones, plus a single-node graph.
std::vector<CircuitGraph> mixed_graphs() {
  std::vector<CircuitGraph> graphs;
  // Diamond: shallow, reconvergent (1 skip edge).
  {
    aig::Aig a;
    const aig::Lit x = aig::make_lit(a.add_input(), false);
    const aig::Lit y = aig::make_lit(a.add_input(), false);
    const aig::Lit z = aig::make_lit(a.add_input(), false);
    a.add_output(a.add_and(a.add_and(x, y), a.add_and(x, z)));
    graphs.push_back(deepgate::prepare(a, 2000, 5));
  }
  // Squarer: outputs optimize to constants -> exercises the
  // constant-collapsed preparation path; deeper than the diamond.
  graphs.push_back(deepgate::prepare(data::gen_squarer(5), 2000, 6));
  // EPFL-like arithmetic netlist through the full prepare pipeline:
  // different structure and depth from the generators above.
  {
    util::Rng rng(21);
    graphs.push_back(deepgate::prepare(data::gen_epfl_like(rng), 2000, 7));
  }
  // Multiplier: deepest member, many skip edges.
  graphs.push_back(deepgate::prepare(data::gen_multiplier(4), 2000, 8));
  // Single-node graph: one PI, no edges.
  {
    CircuitGraph g;
    g.num_nodes = 1;
    g.num_types = 3;
    g.type_id = {0};
    g.level = {0};
    g.labels = {0.5F};
    g.finalize();
    graphs.push_back(std::move(g));
  }
  return graphs;
}

std::vector<ModelSpec> table2_specs() {
  return {
      {ModelFamily::kGcn, AggKind::kConvSum, false},
      {ModelFamily::kDagConv, AggKind::kConvSum, false},
      {ModelFamily::kDagRec, AggKind::kDeepSet, false},
      {ModelFamily::kDeepGate, AggKind::kAttention, false},  // w/o SC
      {ModelFamily::kDeepGate, AggKind::kAttention, true},   // w/ SC
  };
}

TEST(CircuitGraphMerge, StructureIsDisjointUnion) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);
  const CircuitGraph merged = CircuitGraph::merge(ptrs);

  ASSERT_TRUE(merged.is_batch());
  ASSERT_EQ(merged.members.size(), graphs.size());
  int nodes = 0, max_levels = 0;
  std::size_t edges = 0, skips = 0;
  for (const auto& g : graphs) {
    nodes += g.num_nodes;
    edges += g.edges.size();
    skips += g.skip_edges.size();
    max_levels = std::max(max_levels, g.num_levels);
  }
  EXPECT_EQ(merged.num_nodes, nodes);
  EXPECT_EQ(merged.edges.size(), edges);
  EXPECT_EQ(merged.skip_edges.size(), skips);
  EXPECT_EQ(merged.num_levels, max_levels);
  // Members stay contiguous: node v of member m is merged node offset + v,
  // with identical type and level.
  for (std::size_t m = 0; m < graphs.size(); ++m) {
    const auto& mem = merged.members[m];
    ASSERT_EQ(mem.num_nodes, graphs[m].num_nodes);
    ASSERT_EQ(mem.num_levels, graphs[m].num_levels);
    for (int v = 0; v < mem.num_nodes; ++v) {
      EXPECT_EQ(merged.type_id[static_cast<std::size_t>(mem.node_offset + v)],
                graphs[m].type_id[static_cast<std::size_t>(v)]);
      EXPECT_EQ(merged.level[static_cast<std::size_t>(mem.node_offset + v)],
                graphs[m].level[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(CircuitGraphMerge, RejectsIncompatibleParts) {
  const auto graphs = mixed_graphs();
  CircuitGraph other = graphs[0];
  other.finalize(4);  // different pe_L
  EXPECT_THROW(CircuitGraph::merge({&graphs[0], &other}), std::invalid_argument);
  EXPECT_THROW(CircuitGraph::merge({&graphs[0], nullptr}), std::invalid_argument);
  const CircuitGraph merged = CircuitGraph::merge({&graphs[0], &graphs[1]});
  EXPECT_THROW(CircuitGraph::merge({&merged, &graphs[2]}), std::invalid_argument);
}

TEST(CircuitGraphMerge, EmptyAndSingle) {
  const CircuitGraph empty = CircuitGraph::merge({});
  EXPECT_EQ(empty.num_nodes, 0);
  EXPECT_FALSE(empty.is_batch());

  const auto graphs = mixed_graphs();
  const CircuitGraph one = CircuitGraph::merge({&graphs[0]});
  ASSERT_TRUE(one.is_batch());
  EXPECT_EQ(one.num_nodes, graphs[0].num_nodes);
  EXPECT_EQ(one.edges, graphs[0].edges);
}

TEST(PlanNodeBatches, RespectsBudgetAndCaps) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  // Budget 0: the pre-batching fallback, one graph per batch.
  auto plan = gnn::plan_node_batches(ptrs, 0, 64);
  EXPECT_EQ(plan.size(), ptrs.size());

  // Huge budget: one batch covering everything.
  plan = gnn::plan_node_batches(ptrs, 1u << 30, 64);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (std::pair<std::size_t, std::size_t>{0, ptrs.size()}));

  // max_graphs = 2: ceil(N/2) batches.
  plan = gnn::plan_node_batches(ptrs, 1u << 30, 2);
  EXPECT_EQ(plan.size(), (ptrs.size() + 1) / 2);

  // Tight budget: every batch within budget unless a lone graph exceeds it.
  plan = gnn::plan_node_batches(ptrs, 40, 64);
  std::size_t covered = 0;
  for (const auto& [begin, end] : plan) {
    ASSERT_LT(begin, end);
    std::size_t nodes = 0;
    for (std::size_t i = begin; i < end; ++i)
      nodes += static_cast<std::size_t>(ptrs[i]->num_nodes);
    if (end - begin > 1) {
      EXPECT_LE(nodes, 40u);
    }
    covered += end - begin;
  }
  EXPECT_EQ(covered, ptrs.size());
}

// The acceptance bar: for every Table II family, predict/embed over the
// merged batch equals the per-graph path to 1e-5 on a heterogeneous batch.
// (The implementation is in fact bit-exact; the looser bound is the contract.)
TEST(BatchedInference, AllFamiliesMatchSingleGraphPath) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  for (const ModelSpec& spec : table2_specs()) {
    deepgate::Options options;
    options.spec = spec;
    options.model = tiny_config();
    const deepgate::Engine engine(options);

    const auto batched = engine.predict_batch(ptrs);
    const auto batched_emb = engine.embeddings_batch(ptrs);
    ASSERT_EQ(batched.size(), graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const auto single = engine.predict_probabilities(graphs[i]);
      ASSERT_EQ(batched[i].size(), single.size()) << gnn::model_spec_label(spec);
      for (std::size_t v = 0; v < single.size(); ++v)
        EXPECT_NEAR(batched[i][v], single[v], 1e-5F)
            << gnn::model_spec_label(spec) << " graph " << i << " node " << v;

      const nn::Matrix emb = engine.embeddings(graphs[i]);
      ASSERT_TRUE(batched_emb[i].same_shape(emb)) << gnn::model_spec_label(spec);
      for (int r = 0; r < emb.rows(); ++r)
        for (int c = 0; c < emb.cols(); ++c)
          EXPECT_NEAR(batched_emb[i].at(r, c), emb.at(r, c), 1e-5F)
              << gnn::model_spec_label(spec) << " graph " << i;
    }
  }
}

TEST(BatchedInference, BatchOfOneIsBitExact) {
  const auto graphs = mixed_graphs();
  for (const ModelSpec& spec : table2_specs()) {
    deepgate::Options options;
    options.spec = spec;
    options.model = tiny_config();
    const deepgate::Engine engine(options);
    for (const auto& g : graphs) {
      const auto batched = engine.predict_batch({&g});
      const auto single = engine.predict_probabilities(g);
      ASSERT_EQ(batched.size(), 1u);
      // Bitwise, not approximate.
      EXPECT_EQ(batched[0], single) << gnn::model_spec_label(spec);

      const auto emb_b = engine.embeddings_batch({&g});
      const nn::Matrix emb = engine.embeddings(g);
      ASSERT_TRUE(emb_b[0].same_shape(emb));
      EXPECT_TRUE(std::equal(emb.data(), emb.data() + emb.size(), emb_b[0].data()))
          << gnn::model_spec_label(spec);
    }
  }
}

TEST(BatchedInference, EmptyBatch) {
  const deepgate::Engine engine;
  EXPECT_TRUE(engine.predict_batch({}).empty());
  EXPECT_TRUE(engine.embeddings_batch({}).empty());
  deepgate::BatchRunner runner(engine);
  EXPECT_TRUE(runner.predict({}).empty());
  EXPECT_TRUE(runner.embeddings({}).empty());
}

TEST(BatchRunner, BudgetedFanOutMatchesSinglePath) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  deepgate::Options options;
  options.model = tiny_config();
  const deepgate::Engine engine(options);

  // Small budget forces several merged batches; threads > 1 fans them out.
  deepgate::BatchOptions bopts;
  bopts.node_budget = 48;
  bopts.threads = 4;
  const deepgate::BatchRunner runner(engine, bopts);

  const auto batched = runner.predict(ptrs);
  const auto embs = runner.embeddings(ptrs);
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    // Bit-exact even through budgeted packing + pool fan-out.
    EXPECT_EQ(batched[i], engine.predict_probabilities(graphs[i])) << "graph " << i;
    const nn::Matrix emb = engine.embeddings(graphs[i]);
    ASSERT_TRUE(embs[i].same_shape(emb));
    EXPECT_TRUE(std::equal(emb.data(), emb.data() + emb.size(), embs[i].data()));
  }
  EXPECT_EQ(runner.stats().calls, 2u);
  EXPECT_EQ(runner.stats().graphs, 2 * graphs.size());
  EXPECT_GE(runner.stats().batches, 2u);
}

bool bit_equal_matrix(const nn::Matrix& a, const nn::Matrix& b) {
  return a.same_shape(b) && std::equal(a.data(), a.data() + a.size(), b.data());
}

// -- Fused forward outputs -----------------------------------------------------

// The tentpole contract: for every Table II family, ONE forward_outputs pass
// is bitwise identical to separate predict() + embed() calls — on each solo
// graph and on the level-merged batch of all of them.
TEST(FusedForward, BitwiseEqualsSeparatePredictAndEmbed) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);
  const CircuitGraph merged = CircuitGraph::merge(ptrs);

  for (const ModelSpec& spec : table2_specs()) {
    const auto model = gnn::make_model(spec, tiny_config());
    nn::NoGradGuard no_grad;
    const auto check = [&](const CircuitGraph& g, const char* what) {
      const gnn::ForwardOutputs fused = model->forward_outputs(g);
      EXPECT_TRUE(bit_equal_matrix(fused.prediction.value(), model->predict(g).value()))
          << gnn::model_spec_label(spec) << " prediction " << what;
      EXPECT_TRUE(bit_equal_matrix(fused.embedding.value(), model->embed(g).value()))
          << gnn::model_spec_label(spec) << " embedding " << what;
    };
    for (std::size_t i = 0; i < graphs.size(); ++i) check(graphs[i], "solo");
    check(merged, "merged");
  }
}

// Engine::infer_batch must reproduce the predict_batch + embeddings_batch
// pair bitwise while running one merge + one forward instead of two of each.
TEST(FusedForward, InferBatchMatchesSeparateBatchCalls) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  for (const ModelSpec& spec : table2_specs()) {
    deepgate::Options options;
    options.spec = spec;
    options.model = tiny_config();
    const deepgate::Engine engine(options);

    const deepgate::BatchInference fused = engine.infer_batch(ptrs);
    const auto probs = engine.predict_batch(ptrs);
    const auto embs = engine.embeddings_batch(ptrs);
    ASSERT_EQ(fused.probabilities.size(), graphs.size());
    ASSERT_EQ(fused.embeddings.size(), graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(fused.probabilities[i], probs[i]) << gnn::model_spec_label(spec) << " graph " << i;
      EXPECT_TRUE(bit_equal_matrix(fused.embeddings[i], embs[i]))
          << gnn::model_spec_label(spec) << " graph " << i;
    }
  }

  // Degenerate requests follow the predict_batch contract.
  const deepgate::Engine engine;
  EXPECT_TRUE(engine.infer_batch({}).probabilities.empty());
  CircuitGraph empty;
  empty.finalize();
  const auto mixed = engine.infer_batch({&graphs[0], &empty});
  ASSERT_EQ(mixed.probabilities.size(), 2u);
  EXPECT_EQ(mixed.probabilities[0], engine.predict_probabilities(graphs[0]));
  EXPECT_TRUE(mixed.probabilities[1].empty());
  EXPECT_EQ(mixed.embeddings[1].rows(), 0);
  EXPECT_THROW(engine.infer_batch({nullptr}), std::invalid_argument);
}

// BatchRunner::infer: fused through budgeted packing + pool fan-out, and
// repeated identical requests hit the runner-owned merge cache.
TEST(BatchRunner, FusedInferMatchesSeparateAndHitsMergeCache) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  deepgate::Options options;
  options.model = tiny_config();
  const deepgate::Engine engine(options);

  deepgate::BatchOptions bopts;
  // Large enough to form multi-member merge groups (solo batches bypass the
  // cache), small enough to keep several batches for the pool to claim.
  bopts.node_budget = 2048;
  bopts.threads = 4;
  const deepgate::BatchRunner runner(engine, bopts);

  const deepgate::BatchInference fused = runner.infer(ptrs);
  const auto probs = runner.predict(ptrs);
  const auto embs = runner.embeddings(ptrs);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(fused.probabilities[i], probs[i]) << "graph " << i;
    EXPECT_TRUE(bit_equal_matrix(fused.embeddings[i], embs[i])) << "graph " << i;
    EXPECT_EQ(fused.probabilities[i], engine.predict_probabilities(graphs[i]));
  }
  // Three calls over the same request list: the first pays every merge, the
  // later ones hit the signature cache (multi-member groups only).
  EXPECT_GE(runner.merge_cache_stats().hits, 1u);
  const auto again = runner.infer(ptrs);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(again.probabilities[i], fused.probabilities[i]);
}

// -- Checkpoint round trip ------------------------------------------------------

// save -> perturb every parameter -> load must restore predict AND the fused
// forward_outputs bit-exactly, for every family, solo and merged.
TEST(EngineCheckpoint, SavePerturbLoadRestoresBitExactOutputs) {
  const auto graphs = mixed_graphs();
  std::vector<const CircuitGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  for (const ModelSpec& spec : table2_specs()) {
    deepgate::Options options;
    options.spec = spec;
    options.model = tiny_config();
    deepgate::Engine engine(options);

    const auto ref_solo = engine.predict_probabilities(graphs[0]);
    const deepgate::BatchInference ref = engine.infer_batch(ptrs);

    const std::string path =
        (std::filesystem::temp_directory_path() / "dg_fused_ckpt.dgtp").string();
    ASSERT_TRUE(engine.save(path)) << gnn::model_spec_label(spec);

    // Perturb every parameter in place; predictions must visibly change so
    // the reload below proves restoration rather than a no-op.
    for (auto& [name, tensor] : engine.model().named_params()) {
      nn::Matrix& value = tensor.mutable_value();
      for (std::size_t k = 0; k < value.size(); ++k) value.data()[k] += 0.25F;
    }
    EXPECT_NE(engine.predict_probabilities(graphs[0]), ref_solo)
        << gnn::model_spec_label(spec) << " (perturbation had no effect)";

    ASSERT_TRUE(engine.load(path)) << gnn::model_spec_label(spec);
    std::remove(path.c_str());

    EXPECT_EQ(engine.predict_probabilities(graphs[0]), ref_solo) << gnn::model_spec_label(spec);
    const deepgate::BatchInference reloaded = engine.infer_batch(ptrs);
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(reloaded.probabilities[i], ref.probabilities[i])
          << gnn::model_spec_label(spec) << " graph " << i;
      EXPECT_TRUE(bit_equal_matrix(reloaded.embeddings[i], ref.embeddings[i]))
          << gnn::model_spec_label(spec) << " graph " << i;
    }
  }
}

TEST(BatchedEvaluate, MatchesPerGraphFallbackAndIsDeterministic) {
  const auto graphs = mixed_graphs();
  deepgate::Options options;
  options.model = tiny_config();
  const deepgate::Engine engine(options);

  gnn::EvalOptions batched;
  batched.node_budget = 48;
  gnn::EvalOptions fallback;
  fallback.node_budget = 0;  // pre-batching path, still pooled
  gnn::EvalOptions serial = fallback;
  serial.threads = 1;

  const double e_batched = gnn::evaluate(engine.model(), graphs, batched);
  const double e_fallback = gnn::evaluate(engine.model(), graphs, fallback);
  const double e_serial = gnn::evaluate(engine.model(), graphs, serial);
  // Merged forwards are bit-exact and the reduction order is fixed, so all
  // three agree exactly.
  EXPECT_EQ(e_batched, e_fallback);
  EXPECT_EQ(e_fallback, e_serial);
  EXPECT_EQ(engine.evaluate(graphs), e_serial);
}

// Repeated offline eval of a fixed test set re-forms identical merge groups
// every pass: with a caller-attached MergeCache the second pass hits the
// signature cache instead of re-paying merge+finalize, and the Eq. (8)
// number is unchanged. Engine::evaluate wires its own cache the same way.
TEST(BatchedEvaluate, MergeCacheReusedAcrossRepeatedEvaluate) {
  const auto graphs = mixed_graphs();
  deepgate::Options options;
  options.model = tiny_config();
  const deepgate::Engine engine(options);

  gnn::MergeCache cache(8);
  gnn::EvalOptions opts;
  opts.node_budget = 2048;  // multi-member groups (solo batches bypass the cache)
  opts.merge_cache = &cache;

  const double uncached = gnn::evaluate(engine.model(), graphs, gnn::EvalOptions{});
  const double first = gnn::evaluate(engine.model(), graphs, opts);
  const auto after_first = cache.stats();
  EXPECT_GE(after_first.misses, 1u);
  const double second = gnn::evaluate(engine.model(), graphs, opts);
  const auto after_second = cache.stats();
  EXPECT_GE(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, after_first.misses);  // nothing re-merged
  EXPECT_EQ(first, second);
  // Budgets differ between opts and the default, but the result is the same
  // batched-bit-exact Eq. (8) number either way.
  EXPECT_EQ(first, uncached);

  // The engine-owned cache behind Engine::evaluate: first call merges,
  // repeats hit.
  const double e1 = engine.evaluate(graphs);
  const auto engine_first = engine.eval_merge_cache_stats();
  const double e2 = engine.evaluate(graphs);
  const auto engine_second = engine.eval_merge_cache_stats();
  EXPECT_EQ(e1, e2);
  EXPECT_GT(engine_second.hits, engine_first.hits);
  EXPECT_EQ(engine_second.misses, engine_first.misses);

  // clear() releases the retained super-graphs; the next eval re-merges
  // (a fresh miss) and still reports the identical number.
  EXPECT_GE(engine_second.entries, 1u);
  engine.clear_eval_cache();
  EXPECT_EQ(engine.eval_merge_cache_stats().entries, 0u);
  EXPECT_EQ(engine.evaluate(graphs), e1);
  EXPECT_GT(engine.eval_merge_cache_stats().misses, engine_second.misses);
}

TEST(EffectiveIterations, RecurrentHonorsOverrideStackedLogsOnce) {
  deepgate::Options rec;
  rec.model = tiny_config();
  const deepgate::Engine recurrent(rec);
  EXPECT_EQ(recurrent.effective_iterations(7), 7);
  EXPECT_EQ(recurrent.effective_iterations(0), tiny_config().iterations);

  deepgate::Options stacked;
  stacked.spec = {ModelFamily::kGcn, AggKind::kConvSum, false};
  stacked.model = tiny_config();
  const deepgate::Engine gcn(stacked);
  EXPECT_EQ(gcn.effective_iterations(7), tiny_config().iterations);

  // The override is ignored numerically, too: T=7 equals the default run.
  const auto graphs = mixed_graphs();
  EXPECT_EQ(gcn.evaluate(graphs, 7), gcn.evaluate(graphs));
}

}  // namespace
}  // namespace dg
