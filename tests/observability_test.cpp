#include "analysis/observability.hpp"

#include "analysis/cop.hpp"
#include "aig/gate_graph.hpp"

#include <gtest/gtest.h>

namespace dg::analysis {
namespace {

using namespace dg::aig;

TEST(Observability, OutputIsFullyObservable) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y));
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  EXPECT_DOUBLE_EQ(obs[static_cast<std::size_t>(g.outputs[0])], 1.0);
}

TEST(Observability, AndInputMaskedBySibling) {
  // O(x through AND) = P(sibling = 1) = 0.5 for a PI sibling.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y));
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  EXPECT_DOUBLE_EQ(obs[0], 0.5);
  EXPECT_DOUBLE_EQ(obs[1], 0.5);
}

TEST(Observability, NotIsTransparent) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  a.add_output(lit_not(x));
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  EXPECT_DOUBLE_EQ(obs[0], 1.0);  // PI observed through the inverter
}

TEST(Observability, DecaysWithDepth) {
  // AND chain: each level multiplies observability by P(sibling=1) = 0.5.
  Aig a;
  Lit acc = make_lit(a.add_input(), false);
  for (int i = 0; i < 4; ++i) acc = a.add_and(acc, make_lit(a.add_input(), false));
  a.add_output(acc);
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  // First PI sits under 4 AND gates with sibling probabilities 0.5 each...
  // except deeper siblings have lower P(1): 0.5, then chained node probs.
  // Just assert strict monotone decay toward the first input.
  EXPECT_LT(obs[0], obs[static_cast<std::size_t>(g.outputs[0])]);
  EXPECT_GT(obs[0], 0.0);
}

TEST(Observability, MultiFanoutTakesBestPath) {
  // x reaches one output through an AND (obs 0.5) and another directly;
  // the direct path dominates: obs(x) = 1.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y));
  a.add_output(x);
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  EXPECT_DOUBLE_EQ(obs[0], 1.0);
}

TEST(Observability, DanglingNodeUnobservable) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  (void)a.add_and(x, lit_not(y));  // dangling AND
  a.add_output(a.add_and(x, y));
  const GateGraph g = to_gate_graph(a);
  const auto obs = cop_observability(g, cop_probabilities(g));
  // The dangling AND is some non-output node with observability 0: find it.
  bool found_zero = false;
  for (std::size_t v = 0; v < g.size(); ++v) found_zero |= obs[v] == 0.0;
  EXPECT_TRUE(found_zero);
}

TEST(Testability, DetectabilitySplitsByPolarity) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit f = a.add_and(x, y);
  a.add_output(f);
  const GateGraph g = to_gate_graph(a);
  const auto ctrl = cop_probabilities(g);
  const auto t = random_pattern_testability(g, ctrl);
  const auto out = static_cast<std::size_t>(g.outputs[0]);
  // Output node: C1 = 0.25 -> sa0 detect 0.25; sa1 detect 0.75.
  EXPECT_DOUBLE_EQ(t.detect_sa0[out], 0.25);
  EXPECT_DOUBLE_EQ(t.detect_sa1[out], 0.75);
  // Detectabilities are probabilities.
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_GE(t.detect_sa0[v], 0.0);
    EXPECT_LE(t.detect_sa0[v], 1.0);
    EXPECT_GE(t.detect_sa1[v], 0.0);
    EXPECT_LE(t.detect_sa1[v], 1.0);
  }
}

}  // namespace
}  // namespace dg::analysis
