#include "aig/aig.hpp"

#include "sim/bitsim.hpp"

#include <gtest/gtest.h>

namespace dg::aig {
namespace {

TEST(Lit, Encoding) {
  const Lit l = make_lit(5, true);
  EXPECT_EQ(lit_var(l), 5U);
  EXPECT_TRUE(lit_neg(l));
  EXPECT_EQ(lit_not(l), make_lit(5, false));
  EXPECT_EQ(lit_strip(l), make_lit(5, false));
  EXPECT_EQ(kLitTrue, lit_not(kLitFalse));
}

TEST(Aig, ConstNodeExists) {
  Aig a;
  EXPECT_EQ(a.num_vars(), 1U);
  EXPECT_TRUE(a.is_const(0));
}

TEST(Aig, TrivialSimplifications) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  EXPECT_EQ(a.add_and(x, kLitFalse), kLitFalse);
  EXPECT_EQ(a.add_and(kLitFalse, x), kLitFalse);
  EXPECT_EQ(a.add_and(x, kLitTrue), x);
  EXPECT_EQ(a.add_and(kLitTrue, x), x);
  EXPECT_EQ(a.add_and(x, x), x);
  EXPECT_EQ(a.add_and(x, lit_not(x)), kLitFalse);
  EXPECT_EQ(a.num_ands(), 0U);
}

TEST(Aig, StructuralHashingDeduplicates) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(y, x);  // commuted
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(a.num_ands(), 1U);
  const Lit n3 = a.add_and(x, lit_not(y));  // different polarity -> new node
  EXPECT_NE(n1, n3);
  EXPECT_EQ(a.num_ands(), 2U);
}

TEST(Aig, RawBypassesHashing) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and_raw(x, y);
  const Lit n2 = a.add_and_raw(x, y);
  EXPECT_NE(n1, n2);
  EXPECT_EQ(a.num_ands(), 2U);
}

TEST(Aig, LevelsAndDepth) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(n1, z);
  a.add_output(n2);
  const auto lvl = a.levels();
  EXPECT_EQ(lvl[lit_var(x)], 0);
  EXPECT_EQ(lvl[lit_var(n1)], 1);
  EXPECT_EQ(lvl[lit_var(n2)], 2);
  EXPECT_EQ(a.depth(), 2);
}

TEST(Aig, FanoutCounts) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(n1, x);  // x used twice, n1 once here
  a.add_output(n2);
  a.add_output(n1);  // n1 also drives an output
  const auto fo = a.fanout_counts();
  EXPECT_EQ(fo[lit_var(x)], 2);
  EXPECT_EQ(fo[lit_var(n1)], 2);  // one AND + one PO
  EXPECT_EQ(fo[lit_var(n2)], 1);
}

TEST(Aig, MakeOrTruthTable) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.make_or(x, y));
  // 4 patterns: x = 0101..., y = 0011...
  const auto words = sim::simulate_aig(a, {0xAULL, 0xCULL});
  EXPECT_EQ(sim::lit_word(words, a.outputs()[0]) & 0xFULL, 0xEULL);  // OR
}

TEST(Aig, MakeXorTruthTable) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.make_xor(x, y));
  const auto words = sim::simulate_aig(a, {0xAULL, 0xCULL});
  EXPECT_EQ(sim::lit_word(words, a.outputs()[0]) & 0xFULL, 0x6ULL);  // XOR
}

TEST(Aig, MakeMuxTruthTable) {
  Aig a;
  const Lit s = make_lit(a.add_input(), false);
  const Lit t = make_lit(a.add_input(), false);
  const Lit e = make_lit(a.add_input(), false);
  a.add_output(a.make_mux(s, t, e));
  // s=0xF0, t=0xCC, e=0xAA -> out = (s&t)|(!s&e) = 0xC0 | 0x0A = 0xCA
  const auto words = sim::simulate_aig(a, {0xF0ULL, 0xCCULL, 0xAAULL});
  EXPECT_EQ(sim::lit_word(words, a.outputs()[0]) & 0xFFULL, 0xCAULL);
}

TEST(Aig, WideAndIsBalanced) {
  Aig a;
  std::vector<Lit> lits;
  for (int i = 0; i < 16; ++i) lits.push_back(make_lit(a.add_input(), false));
  a.add_output(a.make_and_n(lits));
  EXPECT_EQ(a.depth(), 4);  // log2(16)
  EXPECT_EQ(a.num_ands(), 15U);
}

TEST(Aig, EmptyAndNIsTrue) {
  Aig a;
  EXPECT_EQ(a.make_and_n({}), kLitTrue);
  EXPECT_EQ(a.make_or_n({}), kLitFalse);
}

TEST(Aig, UsesConstantsDetection) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  a.add_output(x);
  EXPECT_FALSE(a.uses_constants());
  a.add_output(kLitTrue);
  EXPECT_TRUE(a.uses_constants());
}

TEST(Aig, OutputNames) {
  Aig a;
  const Var v = a.add_input("clk_en");
  a.add_output(make_lit(v, true), "n_out");
  EXPECT_EQ(a.input_name(0), "clk_en");
  EXPECT_EQ(a.output_name(0), "n_out");
}

}  // namespace
}  // namespace dg::aig
