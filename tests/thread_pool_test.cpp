// Thread pool: lifecycle, chunk coverage, exception propagation, nested
// submission, and the end-to-end determinism contracts of the parallel
// execution layer (bit-identical simulation at every thread count; training
// losses matching across worker counts to float tolerance).
#include "util/thread_pool.hpp"

#include "core/deepgate.hpp"
#include "data/generators_large.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "sim/probability.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

using namespace dg;

TEST(ThreadPool, StartupShutdown) {
  for (int n : {1, 2, 4, 8}) {
    util::ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
    // Destructor joins; constructing/destructing repeatedly must not hang.
  }
  util::ThreadPool clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
}

TEST(ThreadPool, RunChunksCoversEveryChunkExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr int kChunks = 97;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](int c) { hits[static_cast<std::size_t>(c)]++; });
  for (int c = 0; c < kChunks; ++c) EXPECT_EQ(hits[static_cast<std::size_t>(c)].load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int n : {1, 3, 4}) {
    util::ThreadPool pool(n);
    constexpr std::int64_t kN = 10001;
    std::vector<std::atomic<int>> hits(kN);
    util::parallel_for(pool, 0, kN, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunkPartitionIsDeterministic) {
  // Fixed boundaries: chunk c of C over n indices starts at n*c/C.
  EXPECT_EQ(util::chunk_begin(10, 4, 0), 0);
  EXPECT_EQ(util::chunk_begin(10, 4, 1), 2);
  EXPECT_EQ(util::chunk_begin(10, 4, 2), 5);
  EXPECT_EQ(util::chunk_begin(10, 4, 3), 7);
  EXPECT_EQ(util::chunk_begin(10, 4, 4), 10);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunks(64,
                      [&](int c) {
                        if (c == 13) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.run_chunks(8, [&](int) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_chunks(4, [&](int c) {
    // Nested submission from a worker must not deadlock or drop work.
    util::parallel_for(pool, c * 16, (c + 1) * 16, 1,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           hits[static_cast<std::size_t>(i)]++;
                       });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  util::ThreadPool pool(4);
  int calls = 0;
  util::parallel_for(pool, 5, 5, 1, [&](std::int64_t, std::int64_t) { calls++; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> hits{0};
  util::parallel_for(pool, 0, 1, 1, [&](std::int64_t lo, std::int64_t hi) {
    hits += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelDeterminism, SimulationBitIdenticalAcrossThreadCounts) {
  const aig::Aig mult = data::gen_multiplier(8);
  const aig::GateGraph g = aig::to_gate_graph(mult);
  util::set_global_threads(1);
  const auto serial = sim::gate_graph_probabilities(g, 4096, 42);
  const auto exact_serial = sim::exact_gate_graph_probabilities(g);
  for (int t : {2, 4}) {
    util::set_global_threads(t);
    EXPECT_EQ(sim::gate_graph_probabilities(g, 4096, 42), serial) << t << " threads";
    EXPECT_EQ(sim::exact_gate_graph_probabilities(g), exact_serial) << t << " threads";
  }
  util::set_global_threads(1);
}

TEST(ParallelDeterminism, KernelsBitIdenticalAcrossThreadCounts) {
  util::Rng rng(3);
  const nn::Matrix a = nn::normal(300, 70, 1.0F, rng);
  const nn::Matrix b = nn::normal(70, 90, 1.0F, rng);
  util::set_global_threads(1);
  const nn::Matrix c1 = nn::kern::matmul(a, b);
  const nn::Matrix tn1 = nn::kern::matmul_tn(a, nn::kern::matmul(a, b));
  util::set_global_threads(4);
  const nn::Matrix c4 = nn::kern::matmul(a, b);
  const nn::Matrix tn4 = nn::kern::matmul_tn(a, nn::kern::matmul(a, b));
  util::set_global_threads(1);
  ASSERT_TRUE(c1.same_shape(c4));
  for (std::size_t i = 0; i < c1.size(); ++i) ASSERT_EQ(c1.data()[i], c4.data()[i]);
  for (std::size_t i = 0; i < tn1.size(); ++i) ASSERT_EQ(tn1.data()[i], tn4.data()[i]);
}

TEST(ParallelDeterminism, TrainingLossMatchesAcrossWorkerCounts) {
  // DEEPGATE_THREADS=1 vs =4 end to end: same prepared circuits, same model
  // seed; epoch losses must agree to float tolerance (the only difference is
  // the gradient reduction order).
  std::vector<gnn::CircuitGraph> train_set;
  for (int i = 0; i < 4; ++i)
    train_set.push_back(deepgate::prepare(data::gen_squarer(5 + i), 2048, 9 + i));

  const auto run = [&](int threads) {
    util::set_global_threads(threads);
    deepgate::Options options;
    options.model.dim = 16;
    options.model.iterations = 2;
    options.model.mlp_hidden = 8;
    deepgate::Engine engine(options);
    gnn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_circuits = 4;
    tc.threads = threads;
    return engine.train(train_set, tc);
  };

  const gnn::TrainResult serial = run(1);
  const gnn::TrainResult parallel = run(4);
  util::set_global_threads(1);
  EXPECT_EQ(serial.threads_used, 1);
  EXPECT_EQ(parallel.threads_used, 4);
  ASSERT_EQ(serial.epoch_loss.size(), parallel.epoch_loss.size());
  // Epoch 1 precedes any optimizer step, so it must match bit-exactly.
  EXPECT_DOUBLE_EQ(serial.epoch_loss[0], parallel.epoch_loss[0]);
  for (std::size_t e = 0; e < serial.epoch_loss.size(); ++e)
    EXPECT_NEAR(serial.epoch_loss[e], parallel.epoch_loss[e],
                1e-4 * (1.0 + std::abs(serial.epoch_loss[e])))
        << "epoch " << e;
}

TEST(ParallelDeterminism, DefaultThreadsHonorsEnv) {
  EXPECT_GE(util::default_num_threads(), 1);
}

}  // namespace
