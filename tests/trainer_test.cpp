#include "gnn/trainer.hpp"

#include "aig/gate_graph.hpp"
#include "gnn/metrics.hpp"
#include "gnn/models.hpp"
#include "netlist/to_aig.hpp"
#include "data/generators_small.hpp"
#include "sim/probability.hpp"
#include "synth/optimize.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::gnn {
namespace {

std::vector<CircuitGraph> tiny_training_set(int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<CircuitGraph> graphs;
  while (static_cast<int>(graphs.size()) < count) {
    const aig::Aig a =
        synth::optimize(netlist::to_aig(data::gen_itc_like(rng)));
    if (a.num_ands() == 0 || a.uses_constants()) continue;
    const aig::GateGraph g = aig::to_gate_graph(a);
    if (g.size() > 600) continue;
    graphs.push_back(
        CircuitGraph::from_gate_graph(g, sim::gate_graph_probabilities(g, 20000, rng.next_u64())));
  }
  return graphs;
}

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.dim = 12;
  cfg.iterations = 3;
  cfg.mlp_hidden = 8;
  cfg.seed = 21;
  return cfg;
}

TEST(Trainer, LossDecreases) {
  const auto graphs = tiny_training_set(6, 1);
  auto model = make_deepgate(tiny_config());
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.lr = 3e-3F;
  cfg.seed = 2;
  cfg.batch_circuits = 2;  // several optimizer steps per epoch on 6 circuits
  const TrainResult result = train(*model, graphs, cfg);
  ASSERT_EQ(result.epoch_loss.size(), 8U);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front() * 0.8);
}

TEST(Trainer, TrainingImprovesEvaluation) {
  const auto graphs = tiny_training_set(6, 3);
  auto model = make_deepgate(tiny_config());
  const double before = evaluate(*model, graphs);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.lr = 3e-3F;
  const TrainResult result = train(*model, graphs, cfg);
  const double after = evaluate(*model, graphs);
  EXPECT_LT(after, before);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto graphs = tiny_training_set(4, 5);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.seed = 7;

  auto m1 = make_deepgate(tiny_config());
  auto m2 = make_deepgate(tiny_config());
  const auto r1 = train(*m1, graphs, cfg);
  const auto r2 = train(*m2, graphs, cfg);
  ASSERT_EQ(r1.epoch_loss.size(), r2.epoch_loss.size());
  for (std::size_t e = 0; e < r1.epoch_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(r1.epoch_loss[e], r2.epoch_loss[e]);
}

TEST(Trainer, EmptyInputsAreSafe) {
  auto model = make_deepgate(tiny_config());
  TrainConfig cfg;
  const auto result = train(*model, {}, cfg);
  EXPECT_TRUE(result.epoch_loss.empty());
  cfg.epochs = 0;
  const auto graphs = tiny_training_set(1, 9);
  EXPECT_TRUE(train(*model, graphs, cfg).epoch_loss.empty());
}

TEST(Trainer, BatchAccumulationMatchesSmallBatches) {
  // Different batch sizes change step granularity but training must remain
  // stable and converge for both.
  const auto graphs = tiny_training_set(8, 11);
  for (int batch : {1, 4}) {
    auto model = make_deepgate(tiny_config());
    TrainConfig cfg;
    cfg.epochs = 4;
    cfg.batch_circuits = batch;
    cfg.lr = 2e-3F;
    const auto result = train(*model, graphs, cfg);
    EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front()) << "batch=" << batch;
  }
}

TEST(Trainer, MergedForwardMatchesSequentialToTolerance) {
  // The merged-batch path forwards each optimizer batch as one level-merged
  // super-graph. The objective is identical and merged forwards are
  // bit-exact per member, so per-epoch losses must track the sequential
  // trainer closely (only backward accumulation order differs).
  const auto graphs = tiny_training_set(6, 17);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 2e-3F;
  cfg.seed = 3;
  cfg.batch_circuits = 3;
  cfg.threads = 1;

  auto sequential = make_deepgate(tiny_config());
  const auto r_seq = train(*sequential, graphs, cfg);

  TrainConfig merged_cfg = cfg;
  merged_cfg.merged_forward = true;
  auto merged = make_deepgate(tiny_config());
  const auto r_merged = train(*merged, graphs, merged_cfg);

  ASSERT_EQ(r_merged.epoch_loss.size(), r_seq.epoch_loss.size());
  for (std::size_t e = 0; e < r_seq.epoch_loss.size(); ++e)
    EXPECT_NEAR(r_merged.epoch_loss[e], r_seq.epoch_loss[e],
                5e-3 * (1.0 + std::abs(r_seq.epoch_loss[e])))
        << "epoch " << e;
  // And it actually trains.
  EXPECT_LT(r_merged.epoch_loss.back(), r_merged.epoch_loss.front());
}

TEST(Trainer, MergedForwardWorksWhenStreaming) {
  // train_streaming honors merged_forward too; with one chunk holding the
  // whole set it reproduces train_merged exactly (same shuffles, same steps).
  class OneChunkStream final : public GraphStream {
   public:
    explicit OneChunkStream(const std::vector<CircuitGraph>& graphs) : graphs_(graphs) {}
    bool next(std::vector<CircuitGraph>& out) override {
      if (done_) return false;
      done_ = true;
      out = graphs_;
      return true;
    }
    void reset() override { done_ = false; }

   private:
    const std::vector<CircuitGraph>& graphs_;
    bool done_ = false;
  };

  const auto graphs = tiny_training_set(4, 19);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.lr = 2e-3F;
  cfg.seed = 5;
  cfg.batch_circuits = 2;
  cfg.merged_forward = true;

  auto in_memory = make_deepgate(tiny_config());
  const auto r_mem = train(*in_memory, graphs, cfg);

  OneChunkStream stream(graphs);
  auto streamed = make_deepgate(tiny_config());
  const auto r_stream = train_streaming(*streamed, stream, cfg);

  ASSERT_EQ(r_stream.epoch_loss.size(), r_mem.epoch_loss.size());
  for (std::size_t e = 0; e < r_mem.epoch_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(r_stream.epoch_loss[e], r_mem.epoch_loss[e]) << "epoch " << e;
}

TEST(Trainer, BaselinesTrainToo) {
  const auto graphs = tiny_training_set(4, 13);
  for (auto family : {ModelFamily::kGcn, ModelFamily::kDagConv, ModelFamily::kDagRec}) {
    ModelSpec spec{family, AggKind::kDeepSet, false};
    auto model = make_model(spec, tiny_config());
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.lr = 3e-3F;
    const auto result = train(*model, graphs, cfg);
    EXPECT_LE(result.epoch_loss.back(), result.epoch_loss.front() * 1.05)
        << model_family_name(family);
  }
}

}  // namespace
}  // namespace dg::gnn
