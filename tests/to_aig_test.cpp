// Netlist -> AIG conversion: functional equivalence is THE invariant — we
// verify it gate-type by gate-type and then property-test over randomized
// generated netlists.
#include "netlist/to_aig.hpp"

#include "data/generators_small.hpp"
#include "sim/bitsim.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace dg::netlist {
namespace {

/// Simulate netlist + its AIG on the same random patterns; outputs must agree.
void expect_equivalent(const Netlist& nl, util::Rng& rng, int pattern_words = 4) {
  const aig::Aig a = to_aig(nl);
  ASSERT_EQ(a.num_inputs(), nl.inputs().size());
  ASSERT_EQ(a.num_outputs(), nl.outputs().size());
  for (int w = 0; w < pattern_words; ++w) {
    std::vector<std::uint64_t> patterns(nl.inputs().size());
    for (auto& p : patterns) p = rng.next_u64();
    const auto nw = sim::simulate_netlist(nl, patterns);
    const auto aw = sim::simulate_aig(a, patterns);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      ASSERT_EQ(nw[static_cast<std::size_t>(nl.outputs()[o])],
                sim::lit_word(aw, a.outputs()[o]))
          << "output " << o << " differs";
    }
  }
}

class GateTypeEquivalence : public ::testing::TestWithParam<std::tuple<GateType, int>> {};

TEST_P(GateTypeEquivalence, SingleGateMatches) {
  const auto [type, arity] = GetParam();
  Netlist nl;
  std::vector<int> ins;
  for (int i = 0; i < arity; ++i) ins.push_back(nl.add_input());
  nl.mark_output(nl.add_gate(type, ins));
  util::Rng rng(static_cast<std::uint64_t>(arity) * 31 + static_cast<std::uint64_t>(type));
  expect_equivalent(nl, rng);
}

INSTANTIATE_TEST_SUITE_P(
    AllGatesAllArities, GateTypeEquivalence,
    ::testing::Values(std::make_tuple(GateType::kNot, 1), std::make_tuple(GateType::kBuf, 1),
                      std::make_tuple(GateType::kAnd, 2), std::make_tuple(GateType::kAnd, 3),
                      std::make_tuple(GateType::kAnd, 5), std::make_tuple(GateType::kOr, 2),
                      std::make_tuple(GateType::kOr, 4), std::make_tuple(GateType::kNand, 2),
                      std::make_tuple(GateType::kNand, 6), std::make_tuple(GateType::kNor, 2),
                      std::make_tuple(GateType::kNor, 3), std::make_tuple(GateType::kXor, 2),
                      std::make_tuple(GateType::kXor, 5), std::make_tuple(GateType::kXnor, 2),
                      std::make_tuple(GateType::kXnor, 4)));

TEST(ToAig, RandomFamilyNetlistsAreEquivalent) {
  util::Rng rng(17);
  for (const auto& family : data::family_names()) {
    for (int trial = 0; trial < 3; ++trial) {
      const Netlist nl = data::generate_family(family, rng);
      expect_equivalent(nl, rng);
    }
  }
}

TEST(ToAig, PreservesNames) {
  Netlist nl;
  const int a = nl.add_input("in_a");
  const int g = nl.add_gate(GateType::kNot, {a}, "out_n");
  nl.mark_output(g);
  const aig::Aig aig = to_aig(nl);
  EXPECT_EQ(aig.input_name(0), "in_a");
  EXPECT_EQ(aig.output_name(0), "out_n");
}

TEST(ToAig, BufIsFree) {
  Netlist nl;
  const int a = nl.add_input();
  const int b1 = nl.add_gate(GateType::kBuf, {a});
  const int b2 = nl.add_gate(GateType::kBuf, {b1});
  nl.mark_output(b2);
  const aig::Aig aig = to_aig(nl);
  EXPECT_EQ(aig.num_ands(), 0U);
}

TEST(ToAig, SharedStructureIsHashed) {
  // Two identical XORs over the same inputs map to one AIG cone.
  Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::kXor, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kXor, {a, b}));
  const aig::Aig aig = to_aig(nl);
  EXPECT_EQ(aig.num_ands(), 3U);  // one XOR = 3 ANDs, shared across outputs
  EXPECT_EQ(aig.outputs()[0], aig.outputs()[1]);
}

}  // namespace
}  // namespace dg::netlist
