#include "data/extract.hpp"

#include "aig/gate_graph.hpp"
#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "sim/bitsim.hpp"
#include "synth/optimize.hpp"

#include <gtest/gtest.h>

namespace dg::data {
namespace {

TEST(Extract, RespectsEnvelope) {
  util::Rng rng(1);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_itc_like(rng)));
  ExtractConfig cfg;
  cfg.min_nodes = 36;
  cfg.max_nodes = 400;
  cfg.min_level = 3;
  cfg.max_level = 24;
  for (int t = 0; t < 5; ++t) {
    auto sub = extract_subcircuit(base, cfg, rng);
    ASSERT_TRUE(sub.has_value());
    const auto g = aig::to_gate_graph(*sub);
    EXPECT_GE(g.size(), cfg.min_nodes);
    EXPECT_LE(g.size(), cfg.max_nodes);
    EXPECT_GE(g.num_levels - 1, cfg.min_level);
    EXPECT_LE(g.num_levels - 1, cfg.max_level);
  }
}

TEST(Extract, SubcircuitsAreCleanAigs) {
  util::Rng rng(2);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_opencores_like(rng)));
  ExtractConfig cfg;
  const auto subs = extract_subcircuits(base, 6, cfg, rng);
  EXPECT_GE(subs.size(), 1U);
  for (const auto& sub : subs) {
    EXPECT_FALSE(sub.uses_constants());
    EXPECT_GT(sub.num_ands(), 0U);
    EXPECT_GE(sub.num_outputs(), 1U);
  }
}

TEST(Extract, ReturnsNulloptWhenImpossible) {
  // A 2-gate base cannot yield a 500-node window.
  aig::Aig tiny;
  const auto x = aig::make_lit(tiny.add_input(), false);
  const auto y = aig::make_lit(tiny.add_input(), false);
  tiny.add_output(tiny.add_and(x, y));
  ExtractConfig cfg;
  cfg.min_nodes = 500;
  cfg.max_nodes = 600;
  util::Rng rng(3);
  EXPECT_FALSE(extract_subcircuit(tiny, cfg, rng).has_value());
}

TEST(ExtractNetlistCone, PreservesGateTypesAndFunction) {
  util::Rng rng(4);
  const netlist::Netlist base = gen_iwls_like(rng);
  const std::vector<int> roots{base.outputs()[0]};
  const netlist::Netlist cone = extract_netlist_cone(base, roots, 10000);

  // With an unlimited budget the cone of an output computes the identical
  // function of the original output (inputs map by position).
  // The cone's inputs are created in discovery order, so instead compare via
  // per-gate names: the original output gate keeps its name.
  EXPECT_EQ(cone.outputs().size(), 1U);
  EXPECT_EQ(cone.gate(cone.outputs()[0]).type, base.gate(roots[0]).type);

  // All original gate types survive (no AIG decomposition happened).
  for (const auto& g : cone.gates()) {
    if (g.type == netlist::GateType::kInput) continue;
    EXPECT_FALSE(g.fanins.empty());
  }
}

TEST(ExtractNetlistCone, BudgetBoundsGateCount) {
  util::Rng rng(5);
  const netlist::Netlist base = gen_epfl_like(rng);
  const netlist::Netlist cone = extract_netlist_cone(base, {base.outputs()[0]}, 40);
  std::size_t non_input = 0;
  for (const auto& g : cone.gates()) non_input += g.type != netlist::GateType::kInput;
  EXPECT_LE(non_input, 40U);
}

TEST(Extract, MultiRootWindowsGrowLarger) {
  util::Rng rng(6);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_epfl_like(rng)));
  ExtractConfig small_cfg;
  small_cfg.min_nodes = 36;
  small_cfg.max_nodes = 100;
  ExtractConfig big_cfg;
  big_cfg.min_nodes = 300;
  big_cfg.max_nodes = 3000;
  big_cfg.max_level = 40;
  std::size_t small_nodes = 0, big_nodes = 0;
  if (auto s = extract_subcircuit(base, small_cfg, rng))
    small_nodes = aig::to_gate_graph(*s).size();
  if (auto b = extract_subcircuit(base, big_cfg, rng))
    big_nodes = aig::to_gate_graph(*b).size();
  if (small_nodes && big_nodes) EXPECT_GT(big_nodes, small_nodes);
}

}  // namespace
}  // namespace dg::data
