#include "data/extract.hpp"

#include "aig/gate_graph.hpp"
#include "data/dataset.hpp"
#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "sim/bitsim.hpp"
#include "synth/optimize.hpp"

#include <gtest/gtest.h>

namespace dg::data {
namespace {

TEST(Extract, RespectsEnvelope) {
  util::Rng rng(1);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_itc_like(rng)));
  ExtractConfig cfg;
  cfg.min_nodes = 36;
  cfg.max_nodes = 400;
  cfg.min_level = 3;
  cfg.max_level = 24;
  for (int t = 0; t < 5; ++t) {
    auto sub = extract_subcircuit(base, cfg, rng);
    ASSERT_TRUE(sub.has_value());
    const auto g = aig::to_gate_graph(*sub);
    EXPECT_GE(g.size(), cfg.min_nodes);
    EXPECT_LE(g.size(), cfg.max_nodes);
    EXPECT_GE(g.num_levels - 1, cfg.min_level);
    EXPECT_LE(g.num_levels - 1, cfg.max_level);
  }
}

TEST(Extract, SubcircuitsAreCleanAigs) {
  util::Rng rng(2);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_opencores_like(rng)));
  ExtractConfig cfg;
  const auto subs = extract_subcircuits(base, 6, cfg, rng);
  EXPECT_GE(subs.size(), 1U);
  for (const auto& sub : subs) {
    EXPECT_FALSE(sub.uses_constants());
    EXPECT_GT(sub.num_ands(), 0U);
    EXPECT_GE(sub.num_outputs(), 1U);
  }
}

TEST(Extract, ReturnsNulloptWhenImpossible) {
  // A 2-gate base cannot yield a 500-node window.
  aig::Aig tiny;
  const auto x = aig::make_lit(tiny.add_input(), false);
  const auto y = aig::make_lit(tiny.add_input(), false);
  tiny.add_output(tiny.add_and(x, y));
  ExtractConfig cfg;
  cfg.min_nodes = 500;
  cfg.max_nodes = 600;
  util::Rng rng(3);
  EXPECT_FALSE(extract_subcircuit(tiny, cfg, rng).has_value());
}

TEST(ExtractNetlistCone, PreservesGateTypesAndFunction) {
  util::Rng rng(4);
  const netlist::Netlist base = gen_iwls_like(rng);
  const std::vector<int> roots{base.outputs()[0]};
  const netlist::Netlist cone = extract_netlist_cone(base, roots, 10000);

  // With an unlimited budget the cone of an output computes the identical
  // function of the original output (inputs map by position).
  // The cone's inputs are created in discovery order, so instead compare via
  // per-gate names: the original output gate keeps its name.
  EXPECT_EQ(cone.outputs().size(), 1U);
  EXPECT_EQ(cone.gate(cone.outputs()[0]).type, base.gate(roots[0]).type);

  // All original gate types survive (no AIG decomposition happened).
  for (const auto& g : cone.gates()) {
    if (g.type == netlist::GateType::kInput) continue;
    EXPECT_FALSE(g.fanins.empty());
  }
}

TEST(ExtractNetlistCone, BudgetBoundsGateCount) {
  util::Rng rng(5);
  const netlist::Netlist base = gen_epfl_like(rng);
  const netlist::Netlist cone = extract_netlist_cone(base, {base.outputs()[0]}, 40);
  std::size_t non_input = 0;
  for (const auto& g : cone.gates()) non_input += g.type != netlist::GateType::kInput;
  EXPECT_LE(non_input, 40U);
}

TEST(Extract, ConstantCollapsingConesYieldNullopt) {
  // Every cone of this base optimizes to a constant (x & !x feeds everything),
  // which must be skipped cleanly — never returned as a degenerate sub-AIG.
  aig::Aig base;
  const auto x = aig::make_lit(base.add_input(), false);
  const auto y = aig::make_lit(base.add_input(), false);
  // add_and_raw bypasses construction-time simplification so the base really
  // contains the contradictory structure until synth::optimize proves it.
  auto prev = base.add_and_raw(x, aig::lit_not(x));  // constant false
  for (int i = 0; i < 6; ++i) prev = base.add_and_raw(prev, y);
  base.add_output(prev);

  ExtractConfig cfg;
  cfg.min_nodes = 2;
  cfg.max_nodes = 50;
  cfg.min_level = 1;
  cfg.max_level = 24;
  cfg.tries_per_cone = 10;
  util::Rng rng(7);
  EXPECT_FALSE(extract_subcircuit(base, cfg, rng).has_value());
}

TEST(Extract, DryBasesExhaustionReturnsShortDataset) {
  // An impossible envelope (no generated base reaches 100k nodes) must warn
  // and return a short (here: empty) dataset instead of looping forever.
  DatasetConfig cfg;
  cfg.seed = 11;
  cfg.sim_patterns = 100;
  cfg.max_dry_bases = 2;
  FamilySpec family;
  family.name = "EPFL";
  family.num_subcircuits = 4;
  family.extract.min_nodes = 100000;
  family.extract.max_nodes = 100001;
  family.extract.tries_per_cone = 1;
  cfg.families = {family};
  const Dataset ds = build_dataset(cfg, BuildOptions{});
  EXPECT_TRUE(ds.graphs.empty());
  EXPECT_TRUE(ds.info.empty());
}

TEST(Extract, WantClampsAtFamilyQuota) {
  // A quota that is not a multiple of the per-base cone count (4): the last
  // base must be asked for exactly the remainder, never overshooting.
  DatasetConfig cfg;
  cfg.seed = 13;
  cfg.sim_patterns = 1000;
  FamilySpec family;
  family.name = "EPFL";
  family.num_subcircuits = 5;
  family.extract.min_nodes = 52;
  family.extract.max_nodes = 341;
  family.extract.min_level = 4;
  family.extract.max_level = 17;
  cfg.families = {family};
  const Dataset ds = build_dataset(cfg, BuildOptions{});
  EXPECT_EQ(ds.graphs.size(), 5U);
  // Same with a quota below one base's worth of cones.
  cfg.families[0].num_subcircuits = 3;
  const Dataset ds3 = build_dataset(cfg, BuildOptions{});
  EXPECT_EQ(ds3.graphs.size(), 3U);
}

TEST(Extract, MultiRootWindowsGrowLarger) {
  util::Rng rng(6);
  const aig::Aig base = synth::optimize(netlist::to_aig(gen_epfl_like(rng)));
  ExtractConfig small_cfg;
  small_cfg.min_nodes = 36;
  small_cfg.max_nodes = 100;
  ExtractConfig big_cfg;
  big_cfg.min_nodes = 300;
  big_cfg.max_nodes = 3000;
  big_cfg.max_level = 40;
  std::size_t small_nodes = 0, big_nodes = 0;
  if (auto s = extract_subcircuit(base, small_cfg, rng))
    small_nodes = aig::to_gate_graph(*s).size();
  if (auto b = extract_subcircuit(base, big_cfg, rng))
    big_nodes = aig::to_gate_graph(*b).size();
  if (small_nodes && big_nodes) {
    EXPECT_GT(big_nodes, small_nodes);
  }
}

}  // namespace
}  // namespace dg::data
