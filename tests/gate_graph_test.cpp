#include "aig/gate_graph.hpp"

#include "sim/bitsim.hpp"

#include <gtest/gtest.h>

namespace dg::aig {
namespace {

Aig nand_circuit() {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(lit_not(a.add_and(x, y)));
  return a;
}

TEST(GateGraph, ExpandsInverterAsNode) {
  const GateGraph g = to_gate_graph(nand_circuit());
  // 2 PI + 1 AND + 1 NOT
  EXPECT_EQ(g.size(), 4U);
  const auto counts = g.kind_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(GateKind::kPi)], 2U);
  EXPECT_EQ(counts[static_cast<std::size_t>(GateKind::kAnd)], 1U);
  EXPECT_EQ(counts[static_cast<std::size_t>(GateKind::kNot)], 1U);
  // Output is the NOT node.
  ASSERT_EQ(g.outputs.size(), 1U);
  EXPECT_EQ(g.kind[static_cast<std::size_t>(g.outputs[0])], GateKind::kNot);
}

TEST(GateGraph, SharedInverter) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  // !x used by two ANDs -> only one NOT node should be created.
  a.add_output(a.add_and(lit_not(x), y));
  a.add_output(a.add_and(lit_not(x), z));
  const GateGraph g = to_gate_graph(a);
  EXPECT_EQ(g.kind_counts()[static_cast<std::size_t>(GateKind::kNot)], 1U);
}

TEST(GateGraph, LevelsCountInverters) {
  // x & !y: NOT sits on level 1, AND on level 2.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, lit_not(y)));
  const GateGraph g = to_gate_graph(a);
  EXPECT_EQ(g.num_levels, 3);
}

TEST(GateGraph, TopologicalIds) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  a.add_output(a.add_and(n1, lit_not(x)));
  const GateGraph g = to_gate_graph(a);
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (int s = 0; s < 2; ++s) {
      if (g.fanin[v][s] >= 0) {
        EXPECT_LT(g.fanin[v][s], static_cast<int>(v));
      }
    }
  }
}

TEST(GateGraph, FanoutsConsistentWithFanins) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  a.add_output(a.add_and(n1, x));
  const GateGraph g = to_gate_graph(a);
  const auto fo = g.fanouts();
  std::size_t fanin_edges = 0, fanout_edges = 0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    fanin_edges += static_cast<std::size_t>(g.fanin_count(static_cast<int>(v)));
    fanout_edges += fo[v].size();
  }
  EXPECT_EQ(fanin_edges, fanout_edges);
}

TEST(GateGraph, RejectsConstants) {
  Aig a;
  (void)a.add_input();
  a.add_output(kLitTrue);
  EXPECT_THROW(to_gate_graph(a), std::invalid_argument);
}

TEST(GateGraph, SimulationMatchesAig) {
  // Explicit-gate simulation must agree with complemented-edge simulation.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit f = a.make_mux(x, a.make_xor(y, z), lit_not(a.make_or(y, z)));
  a.add_output(f);
  const GateGraph g = to_gate_graph(a);

  const std::vector<std::uint64_t> patterns{0xF0F0ULL, 0xCCCCULL, 0xAAAAULL};
  const auto aw = sim::simulate_aig(a, patterns);
  const auto gw = sim::simulate_gate_graph(g, patterns);
  EXPECT_EQ(sim::lit_word(aw, f), gw[static_cast<std::size_t>(g.outputs[0])]);
}

}  // namespace
}  // namespace dg::aig
