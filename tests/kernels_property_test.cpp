// Property sweep: every numeric kernel is checked against a naive reference
// implementation over a grid of shapes and random seeds. The kernels are the
// trust base of the whole NN stack (autograd adjoints are built from them),
// so they get reference-level verification, not just spot examples.
#include "nn/kernels.hpp"

#include "nn/init.hpp"
#include "util/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::nn::kern {
namespace {

struct Shape {
  int m, k, n;
  std::uint64_t seed;
};

class KernelSweep : public ::testing::TestWithParam<Shape> {};

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int p = 0; p < a.cols(); ++p)
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

void expect_close(const Matrix& a, const Matrix& b, float tol = 2e-4F) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a.data()[i], b.data()[i], tol * (1.0F + std::abs(b.data()[i])));
}

TEST_P(KernelSweep, MatmulMatchesReference) {
  const auto& p = GetParam();
  util::Rng rng(p.seed);
  const Matrix a = normal(p.m, p.k, 1.0F, rng);
  const Matrix b = normal(p.k, p.n, 1.0F, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST_P(KernelSweep, TransposedVariantsMatchReference) {
  const auto& p = GetParam();
  util::Rng rng(p.seed + 7);
  // matmul_tn(a, b) with a: k x m computes a^T b.
  const Matrix a = normal(p.k, p.m, 1.0F, rng);
  const Matrix b = normal(p.k, p.n, 1.0F, rng);
  Matrix at(p.m, p.k);
  for (int i = 0; i < p.k; ++i)
    for (int j = 0; j < p.m; ++j) at.at(j, i) = a.at(i, j);
  expect_close(matmul_tn(a, b), naive_matmul(at, b));

  const Matrix c = normal(p.m, p.k, 1.0F, rng);
  const Matrix d = normal(p.n, p.k, 1.0F, rng);
  Matrix dt(p.k, p.n);
  for (int i = 0; i < p.n; ++i)
    for (int j = 0; j < p.k; ++j) dt.at(j, i) = d.at(i, j);
  expect_close(matmul_nt(c, d), naive_matmul(c, dt));
}

TEST_P(KernelSweep, AccumulateEqualsAddedProduct) {
  const auto& p = GetParam();
  util::Rng rng(p.seed + 13);
  const Matrix a = normal(p.m, p.k, 1.0F, rng);
  const Matrix b = normal(p.k, p.n, 1.0F, rng);
  Matrix c = normal(p.m, p.n, 1.0F, rng);
  const Matrix expected = add(c, naive_matmul(a, b));
  matmul_acc(c, a, b);
  expect_close(c, expected);
}

TEST_P(KernelSweep, GatherScatterAdjointIdentity) {
  // For any index map idx: sum(gather(A, idx) * B) == sum(A * scatter(B, idx))
  // — the adjoint identity that makes the autograd pair correct.
  const auto& p = GetParam();
  util::Rng rng(p.seed + 19);
  const Matrix a = normal(p.m, p.k, 1.0F, rng);
  std::vector<int> idx(static_cast<std::size_t>(p.n));
  for (auto& i : idx) i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.m)));
  const Matrix b = normal(p.n, p.k, 1.0F, rng);

  const float lhs = sum_all(mul(gather_rows(a, idx), b));
  const float rhs = sum_all(mul(a, scatter_add_rows(b, idx, p.m)));
  EXPECT_NEAR(lhs, rhs, 1e-3F * (1.0F + std::abs(lhs)));
}

TEST_P(KernelSweep, RowColSumConsistency) {
  const auto& p = GetParam();
  util::Rng rng(p.seed + 23);
  const Matrix a = normal(p.m, p.n, 1.0F, rng);
  EXPECT_NEAR(sum_all(row_sum(a)), sum_all(a), 1e-3F * (1.0F + std::abs(sum_all(a))));
  EXPECT_NEAR(sum_all(col_sum(a)), sum_all(a), 1e-3F * (1.0F + std::abs(sum_all(a))));
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelSweep,
                         ::testing::Values(Shape{1, 1, 1, 1}, Shape{1, 7, 3, 2},
                                           Shape{5, 1, 4, 3}, Shape{4, 4, 4, 4},
                                           Shape{8, 3, 9, 5}, Shape{13, 17, 11, 6},
                                           Shape{32, 32, 32, 7}, Shape{2, 64, 2, 8}));

TEST(KernelEdge, ZeroSkipInMatmulIsCorrect) {
  // The i-k-j kernel skips zero multipliers; verify a sparse matrix still
  // multiplies exactly.
  Matrix a = Matrix::zeros(3, 3);
  a.at(0, 2) = 2.0F;
  a.at(2, 0) = -1.0F;
  util::Rng rng(9);
  const Matrix b = normal(3, 3, 1.0F, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST(KernelEdge, EmptyRowDimensions) {
  const Matrix a(0, 4);
  const Matrix b(4, 3);
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 3);
  const Matrix g = gather_rows(b, {});
  EXPECT_EQ(g.rows(), 0);
}

}  // namespace
}  // namespace dg::nn::kern
