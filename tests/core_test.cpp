// Public facade: the full user journey — prepare, train, predict, embed,
// save, reload — through deepgate::Engine only.
#include "core/deepgate.hpp"

#include "data/generators_small.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace {

using deepgate::CircuitGraph;
using deepgate::Engine;
using deepgate::Options;

std::vector<CircuitGraph> prepared_graphs(int count, std::uint64_t seed) {
  dg::util::Rng rng(seed);
  std::vector<CircuitGraph> graphs;
  for (int i = 0; i < count; ++i)
    graphs.push_back(deepgate::prepare(dg::data::gen_itc_like(rng), 20000, rng.next_u64()));
  return graphs;
}

Options tiny_options() {
  Options opt;
  opt.model.dim = 12;
  opt.model.iterations = 3;
  opt.model.mlp_hidden = 8;
  return opt;
}

TEST(Core, PrepareBuildsAigGraphWithLabels) {
  dg::util::Rng rng(1);
  const CircuitGraph g = deepgate::prepare(dg::data::gen_epfl_like(rng), 10000, 7);
  EXPECT_EQ(g.num_types, 3);
  EXPECT_GT(g.num_nodes, 10);
  EXPECT_EQ(g.labels.size(), static_cast<std::size_t>(g.num_nodes));
  for (float y : g.labels) {
    EXPECT_GE(y, 0.0F);
    EXPECT_LE(y, 1.0F);
  }
}

TEST(Core, TrainEvaluatePredict) {
  const auto graphs = prepared_graphs(5, 2);
  Engine engine(tiny_options());
  const double before = engine.evaluate(graphs);
  deepgate::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.lr = 3e-3F;
  engine.train(graphs, cfg);
  EXPECT_LT(engine.evaluate(graphs), before);

  const auto probs = engine.predict_probabilities(graphs[0]);
  ASSERT_EQ(probs.size(), static_cast<std::size_t>(graphs[0].num_nodes));
  for (float p : probs) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
  }
}

TEST(Core, EmbeddingsShape) {
  const auto graphs = prepared_graphs(1, 3);
  Engine engine(tiny_options());
  const dg::nn::Matrix emb = engine.embeddings(graphs[0]);
  EXPECT_EQ(emb.rows(), graphs[0].num_nodes);
  EXPECT_EQ(emb.cols(), 12);
}

TEST(Core, SaveLoadRoundTripPreservesPredictions) {
  const auto graphs = prepared_graphs(3, 4);
  Engine engine(tiny_options());
  deepgate::TrainConfig cfg;
  cfg.epochs = 2;
  engine.train(graphs, cfg);
  const auto before = engine.predict_probabilities(graphs[0]);

  const std::string path =
      (std::filesystem::temp_directory_path() / "dg_core_ckpt.dgtp").string();
  ASSERT_TRUE(engine.save(path));

  Engine restored(tiny_options());
  ASSERT_TRUE(restored.load(path));
  const auto after = restored.predict_probabilities(graphs[0]);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_FLOAT_EQ(before[i], after[i]);
  std::remove(path.c_str());
}

TEST(Core, LoadFromMissingFileFails) {
  Engine engine(tiny_options());
  EXPECT_FALSE(engine.load("/nonexistent/dir/ckpt.dgtp"));
}

TEST(Core, DefaultOptionsAreFullDeepGate) {
  Options opt;
  EXPECT_EQ(opt.spec.family, dg::gnn::ModelFamily::kDeepGate);
  EXPECT_TRUE(opt.spec.use_skip);
  Engine engine(opt);
  EXPECT_STREQ(engine.model().name(), "DeepGate");
}

TEST(Core, AlternativeSpecsConstruct) {
  Options opt = tiny_options();
  opt.spec.family = dg::gnn::ModelFamily::kDagRec;
  opt.spec.agg = dg::gnn::AggKind::kDeepSet;
  Engine engine(opt);
  EXPECT_STREQ(engine.model().name(), "DAG-RecGNN");
}

}  // namespace
