// Synthesis passes: the cardinal invariant is functional equivalence; the
// useful property is node/depth reduction. Both are verified per pass and
// for the whole optimize() pipeline over randomized netlists.
#include "synth/balance.hpp"
#include "synth/optimize.hpp"
#include "synth/rewrite.hpp"
#include "synth/sweep.hpp"

#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "sim/bitsim.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace dg::synth {
namespace {

using namespace dg::aig;

void expect_equivalent(const Aig& a, const Aig& b, util::Rng& rng, int words = 4) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (int w = 0; w < words; ++w) {
    std::vector<std::uint64_t> patterns(a.num_inputs());
    for (auto& p : patterns) p = rng.next_u64();
    const auto wa = sim::simulate_aig(a, patterns);
    const auto wb = sim::simulate_aig(b, patterns);
    for (std::size_t o = 0; o < a.num_outputs(); ++o)
      ASSERT_EQ(sim::lit_word(wa, a.outputs()[o]), sim::lit_word(wb, b.outputs()[o]));
  }
}

TEST(Sweep, RemovesDanglingLogic) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit used = a.add_and(x, y);
  (void)a.add_and(x, lit_not(y));  // dangling
  a.add_output(used);
  const Aig swept = sweep(a);
  EXPECT_EQ(swept.num_ands(), 1U);
  util::Rng rng(1);
  expect_equivalent(a, swept, rng);
}

TEST(Sweep, FoldsDuplicatesViaStrash) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and_raw(x, y);
  const Lit n2 = a.add_and_raw(x, y);  // structural duplicate
  a.add_output(a.add_and_raw(n1, n2));  // AND of identical nodes
  const Aig swept = sweep(a);
  // n1 == n2 after strash, AND(n, n) == n after simplification.
  EXPECT_EQ(swept.num_ands(), 1U);
}

TEST(Sweep, KeepsAllInputs) {
  Aig a;
  (void)a.add_input();
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(y);
  const Aig swept = sweep(a);
  EXPECT_EQ(swept.num_inputs(), 2U);  // unused input preserved (PI interface)
}

TEST(Rewrite, AbsorptionRule) {
  // (x & y) & x == x & y
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit xy = a.add_and(x, y);
  a.add_output(a.add_and_raw(xy, x));
  const Aig rewritten = rewrite(a);
  EXPECT_EQ(rewritten.num_ands(), 1U);
  util::Rng rng(2);
  expect_equivalent(a, rewritten, rng);
}

TEST(Rewrite, ContradictionRule) {
  // (x & y) & !x == 0; as output literal this maps to constant.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit xy = a.add_and(x, y);
  a.add_output(a.add_and_raw(xy, lit_not(x)));
  const Aig rewritten = rewrite(a);
  EXPECT_EQ(rewritten.outputs()[0], kLitFalse);
}

TEST(Rewrite, SubstitutionRule) {
  // !(x & y) & !x == !x
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit nxy = lit_not(a.add_and(x, y));
  a.add_output(a.add_and_raw(nxy, lit_not(x)));
  const Aig rewritten = rewrite(a);
  EXPECT_EQ(rewritten.num_ands(), 0U);
  EXPECT_EQ(rewritten.outputs()[0], lit_not(make_lit(rewritten.inputs()[0], false)));
}

TEST(Rewrite, TwoAndContradiction) {
  // (x & y) & (!x & z) == 0
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit left = a.add_and(x, y);
  const Lit right = a.add_and(lit_not(x), z);
  a.add_output(a.add_and_raw(left, right));
  const Aig rewritten = rewrite(a);
  EXPECT_EQ(rewritten.outputs()[0], kLitFalse);
}

TEST(Balance, ReducesChainDepth) {
  // Left-leaning AND chain of 16 literals: depth 15 -> log2(16) = 4.
  Aig a;
  Lit acc = make_lit(a.add_input(), false);
  std::vector<Lit> ins{acc};
  for (int i = 0; i < 15; ++i) {
    const Lit in = make_lit(a.add_input(), false);
    ins.push_back(in);
    acc = a.add_and(acc, in);
  }
  a.add_output(acc);
  EXPECT_EQ(a.depth(), 15);
  const Aig balanced = balance(a);
  EXPECT_EQ(balanced.depth(), 4);
  util::Rng rng(3);
  expect_equivalent(a, balanced, rng);
}

TEST(Balance, HuffmanUsesArrivalTimes) {
  // A deep subtree ANDed with two shallow inputs: the shallow pair should be
  // combined first, keeping total depth = deep subtree depth + 1.
  Aig a;
  Lit deep = make_lit(a.add_input(), false);
  for (int i = 0; i < 6; ++i) deep = a.add_and(deep, make_lit(a.add_input(), false));
  const Lit s1 = make_lit(a.add_input(), false);
  const Lit s2 = make_lit(a.add_input(), false);
  a.add_output(a.add_and(a.add_and(deep, s1), s2));
  const Aig balanced = balance(a);
  EXPECT_LE(balanced.depth(), 4 + 1);
  util::Rng rng(4);
  expect_equivalent(a, balanced, rng);
}

TEST(Optimize, NeverIncreasesNodesOnRandomCircuits) {
  util::Rng rng(5);
  for (const auto& family : data::family_names()) {
    const Aig raw = netlist::to_aig(data::generate_family(family, rng));
    const Aig opt = optimize(raw);
    EXPECT_LE(opt.num_ands(), raw.num_ands()) << family;
  }
}

TEST(Optimize, PreservesFunctionOnRandomCircuits) {
  util::Rng rng(6);
  for (const auto& family : data::family_names()) {
    for (int trial = 0; trial < 3; ++trial) {
      const Aig raw = netlist::to_aig(data::generate_family(family, rng));
      const Aig opt = optimize(raw);
      expect_equivalent(raw, opt, rng);
    }
  }
}

TEST(Optimize, RemovesRedundancy) {
  // f = (x & y) | (x & y & z): second term is absorbed.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit xy = a.add_and(x, y);
  const Lit xyz = a.add_and(xy, z);
  a.add_output(a.make_or(xy, xyz));
  const Aig opt = optimize(a);
  EXPECT_LE(opt.num_ands(), 2U);
  util::Rng rng(7);
  expect_equivalent(a, opt, rng);
}

TEST(DropConstantOutputs, RemovesOnlyConstants) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y), "real");
  a.add_output(kLitTrue, "stuck1");
  a.add_output(a.add_and(x, lit_not(x)), "stuck0");  // folds to const
  const Aig cleaned = drop_constant_outputs(a);
  EXPECT_EQ(cleaned.num_outputs(), 1U);
  EXPECT_EQ(cleaned.output_name(0), "real");
  EXPECT_FALSE(cleaned.uses_constants());
}

}  // namespace
}  // namespace dg::synth
