#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/ops.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::nn {
namespace {

TEST(Linear, ShapesAndBias) {
  util::Rng rng(1);
  Linear lin(3, 5, rng);
  const Tensor x = constant(Matrix::zeros(2, 3));
  const Tensor y = lin.forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 5);
  // zero input -> bias only, and bias starts at zero
  for (int c = 0; c < 5; ++c) EXPECT_FLOAT_EQ(y.value().at(0, c), 0.0F);
}

TEST(Linear, GradcheckThroughLayer) {
  util::Rng rng(2);
  Linear lin(4, 3, rng);
  Tensor x = Tensor::leaf(normal(3, 4, 0.5F, rng), true);
  NamedParams params;
  lin.collect(params, "lin");
  std::vector<Tensor> leaves{x};
  for (auto& [n, t] : params) leaves.push_back(t);
  EXPECT_TRUE(gradcheck([&] { return mean_all(tanh_t(lin.forward(x))); }, leaves).ok);
}

TEST(Linear, CollectNamesParameters) {
  util::Rng rng(3);
  Linear lin(2, 2, rng);
  NamedParams params;
  lin.collect(params, "layer0");
  ASSERT_EQ(params.size(), 2U);
  EXPECT_EQ(params[0].first, "layer0.w");
  EXPECT_EQ(params[1].first, "layer0.b");
}

TEST(Mlp, HiddenReluOutputSigmoidBounds) {
  util::Rng rng(4);
  Mlp mlp({4, 8, 1}, OutputActivation::kSigmoid, rng);
  const Tensor x = constant(normal(10, 4, 2.0F, rng));
  const Tensor y = mlp.forward(x);
  EXPECT_EQ(y.rows(), 10);
  EXPECT_EQ(y.cols(), 1);
  for (int r = 0; r < 10; ++r) {
    EXPECT_GT(y.value().at(r, 0), 0.0F);
    EXPECT_LT(y.value().at(r, 0), 1.0F);
  }
}

TEST(Mlp, GradcheckThroughTwoLayers) {
  util::Rng rng(5);
  Mlp mlp({3, 5, 2}, OutputActivation::kNone, rng);
  Tensor x = Tensor::leaf(normal(2, 3, 0.5F, rng), true);
  NamedParams params;
  mlp.collect(params, "mlp");
  std::vector<Tensor> leaves{x};
  for (auto& [n, t] : params) leaves.push_back(t);
  EXPECT_TRUE(gradcheck([&] { return mean_all(mlp.forward(x)); }, leaves).ok);
}

TEST(Gru, StateStaysBounded) {
  util::Rng rng(6);
  GruCell gru(4, 6, rng);
  Tensor h = constant(Matrix::zeros(3, 6));
  const Tensor x = constant(normal(3, 4, 1.0F, rng));
  for (int t = 0; t < 50; ++t) h = gru.forward(x, h);
  for (std::size_t i = 0; i < h.value().size(); ++i) {
    EXPECT_LT(std::abs(h.value().data()[i]), 1.0F + 1e-4F);  // tanh-bounded
  }
}

TEST(Gru, IdentityWhenUpdateGateSaturates) {
  // With z ~= 1 (huge positive bias on the update gate), h' ~= h.
  util::Rng rng(7);
  GruCell gru(2, 3, rng);
  NamedParams params;
  gru.collect(params, "gru");
  for (auto& [name, t] : params) {
    if (name == "gru.bz") t.mutable_value().fill(50.0F);
  }
  const Tensor x = constant(normal(2, 2, 1.0F, rng));
  const Tensor h = constant(normal(2, 3, 1.0F, rng));
  const Tensor h2 = gru.forward(x, h);
  for (std::size_t i = 0; i < h.value().size(); ++i)
    EXPECT_NEAR(h2.value().data()[i], h.value().data()[i], 1e-4F);
}

TEST(Gru, GradcheckThroughCell) {
  util::Rng rng(8);
  GruCell gru(3, 4, rng);
  Tensor x = Tensor::leaf(normal(2, 3, 0.5F, rng), true);
  Tensor h = Tensor::leaf(normal(2, 4, 0.5F, rng), true);
  NamedParams params;
  gru.collect(params, "gru");
  std::vector<Tensor> leaves{x, h};
  for (auto& [n, t] : params) leaves.push_back(t);
  const auto res = gradcheck([&] { return mean_all(gru.forward(x, h)); }, leaves);
  EXPECT_TRUE(res.ok) << "rel=" << res.max_rel_err;
}

TEST(Gru, GradcheckThroughRecurrence) {
  // Three recurrent applications of the same cell — gradients must flow
  // through shared parameters across time steps.
  util::Rng rng(9);
  GruCell gru(2, 3, rng);
  Tensor x = Tensor::leaf(normal(2, 2, 0.5F, rng), true);
  Tensor h0 = Tensor::leaf(normal(2, 3, 0.5F, rng), true);
  NamedParams params;
  gru.collect(params, "gru");
  std::vector<Tensor> leaves{x, h0};
  for (auto& [n, t] : params) leaves.push_back(t);
  const auto res = gradcheck(
      [&] {
        Tensor h = h0;
        for (int t = 0; t < 3; ++t) h = gru.forward(x, h);
        return mean_all(h);
      },
      leaves);
  EXPECT_TRUE(res.ok) << "rel=" << res.max_rel_err;
}

TEST(Init, XavierBounds) {
  util::Rng rng(10);
  const Matrix w = xavier_uniform(100, 50, rng);
  const float bound = std::sqrt(6.0F / 150.0F);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), bound + 1e-6F);
  }
}

TEST(Init, KaimingVariance) {
  util::Rng rng(11);
  const Matrix w = kaiming_normal(200, 100, rng);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
  const double var = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(ParamUtils, CountAndFlatten) {
  util::Rng rng(12);
  Linear lin(3, 4, rng);
  NamedParams params;
  lin.collect(params, "l");
  EXPECT_EQ(param_count(params), 3U * 4U + 4U);
  EXPECT_EQ(param_tensors(params).size(), 2U);
}

}  // namespace
}  // namespace dg::nn
