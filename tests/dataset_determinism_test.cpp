// Determinism contract of the sharded dataset pipeline: build_dataset output
// is bit-identical at every thread count, across cold/warm cache runs, and a
// ShardStream over the cached files replays the exact same graphs. Also
// pins the streamed trainer to the sequential trainer for one-chunk streams.
#include "data/dataset.hpp"

#include "data/shard_io.hpp"
#include "gnn/models.hpp"
#include "gnn/trainer.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

namespace dg::data {
namespace {

namespace fs = std::filesystem;

DatasetConfig tiny_config(std::uint64_t seed = 3) {
  DatasetConfig cfg = default_dataset_config(util::BenchScale::kTiny, seed);
  cfg.sim_patterns = 4000;
  return cfg;
}

void expect_datasets_bit_equal(const Dataset& a, const Dataset& b, const char* what) {
  ASSERT_EQ(a.graphs.size(), b.graphs.size()) << what;
  ASSERT_EQ(a.info.size(), b.info.size()) << what;
  for (std::size_t i = 0; i < a.graphs.size(); ++i) {
    EXPECT_TRUE(gnn::bit_equal(a.graphs[i], b.graphs[i])) << what << ": graph " << i;
    EXPECT_EQ(a.info[i].family, b.info[i].family) << what << ": info " << i;
    EXPECT_EQ(a.info[i].nodes, b.info[i].nodes) << what << ": info " << i;
    EXPECT_EQ(a.info[i].levels, b.info[i].levels) << what << ": info " << i;
  }
}

/// Restores the default pool when a test body returns or fails.
struct PoolGuard {
  ~PoolGuard() { util::set_global_threads(util::default_num_threads()); }
};

TEST(DatasetDeterminism, BitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const DatasetConfig cfg = tiny_config();
  const BuildOptions opts;  // no cache: pure generation path

  util::set_global_threads(1);
  const Dataset serial = build_dataset(cfg, opts);
  ASSERT_GE(serial.graphs.size(), 16U);

  for (const int threads : {4, 8}) {
    util::set_global_threads(threads);
    const Dataset parallel = build_dataset(cfg, opts);
    expect_datasets_bit_equal(serial, parallel,
                              threads == 4 ? "threads=4 vs 1" : "threads=8 vs 1");
  }
}

TEST(DatasetDeterminism, ShardSizeIsPartOfTheKeyNotTheOrderWithinAShard) {
  // Different shard sizes legitimately produce different datasets (different
  // RNG partitioning) — but each shard size must itself be deterministic.
  PoolGuard guard;
  const DatasetConfig cfg = tiny_config();
  BuildOptions opts;
  opts.shard_size = 3;
  util::set_global_threads(1);
  const Dataset a = build_dataset(cfg, opts);
  util::set_global_threads(4);
  const Dataset b = build_dataset(cfg, opts);
  expect_datasets_bit_equal(a, b, "shard_size=3 across thread counts");
  EXPECT_NE(dataset_config_hash(cfg, opts), dataset_config_hash(cfg, BuildOptions{}));
}

TEST(DatasetDeterminism, WarmCacheReproducesColdBitExactly) {
  PoolGuard guard;
  const fs::path dir =
      fs::temp_directory_path() / ("dg_dataset_cache_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const DatasetConfig cfg = tiny_config(5);
  BuildOptions opts;
  opts.cache_dir = dir.string();

  util::set_global_threads(4);
  const Dataset cold = build_dataset(cfg, opts);
  ASSERT_FALSE(cold.shard_files.empty());
  for (const auto& path : cold.shard_files)
    EXPECT_TRUE(fs::exists(path)) << path;

  // Warm run — and at a different thread count, which must not matter.
  util::set_global_threads(2);
  const Dataset warm = build_dataset(cfg, opts);
  expect_datasets_bit_equal(cold, warm, "warm vs cold");

  // And a warm run through the facade default options path (env-free).
  util::set_global_threads(1);
  const Dataset warm2 = build_dataset(cfg, opts);
  expect_datasets_bit_equal(cold, warm2, "second warm vs cold");
  fs::remove_all(dir);
}

TEST(DatasetDeterminism, ShardStreamReplaysTheDataset) {
  PoolGuard guard;
  const fs::path dir =
      fs::temp_directory_path() / ("dg_dataset_stream_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const DatasetConfig cfg = tiny_config(7);
  BuildOptions opts;
  opts.cache_dir = dir.string();
  util::set_global_threads(4);
  const Dataset ds = build_dataset(cfg, opts);
  ASSERT_FALSE(ds.shard_files.empty());

  // BuildOptions carries the stream knobs for programmatic callers; the
  // defaults (both off) keep this the plain one-shard-at-a-time reader.
  ShardStream stream(ds.shard_files, opts.stream);
  std::vector<gnn::CircuitGraph> streamed;
  std::vector<gnn::CircuitGraph> chunk;
  while (stream.next(chunk))
    for (auto& g : chunk) streamed.push_back(std::move(g));
  ASSERT_EQ(streamed.size(), ds.graphs.size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_TRUE(gnn::bit_equal(ds.graphs[i], streamed[i])) << "graph " << i;

  // reset() rewinds for the next epoch.
  stream.reset();
  ASSERT_TRUE(stream.next(chunk));
  EXPECT_TRUE(gnn::bit_equal(ds.graphs[0], chunk[0]));
  fs::remove_all(dir);
}

TEST(DatasetDeterminism, StreamedTrainingMatchesSequentialForOneChunk) {
  // A stream with a single chunk holding the whole (tiny) set must reproduce
  // the sequential trainer bit-exactly, epoch for epoch.
  PoolGuard guard;
  util::set_global_threads(1);
  DatasetConfig cfg = tiny_config(9);
  cfg.families.resize(1);
  cfg.families[0].num_subcircuits = 4;
  const Dataset ds = build_dataset(cfg, BuildOptions{});
  ASSERT_GE(ds.graphs.size(), 2U);

  struct OneChunk final : gnn::GraphStream {
    const std::vector<gnn::CircuitGraph>* graphs;
    bool done = false;
    bool next(std::vector<gnn::CircuitGraph>& out) override {
      if (done) return false;
      out = *graphs;
      done = true;
      return true;
    }
    void reset() override { done = false; }
  };

  gnn::ModelConfig mc;
  mc.dim = 12;
  mc.iterations = 3;
  mc.mlp_hidden = 8;
  mc.seed = 21;
  gnn::TrainConfig tc;
  tc.epochs = 3;
  tc.lr = 3e-3F;
  tc.seed = 2;
  tc.batch_circuits = 2;
  tc.threads = 1;

  auto model_seq = gnn::make_deepgate(mc);
  const gnn::TrainResult seq = gnn::train(*model_seq, ds.graphs, tc);

  OneChunk stream;
  stream.graphs = &ds.graphs;
  auto model_stream = gnn::make_deepgate(mc);
  const gnn::TrainResult streamed = gnn::train_streaming(*model_stream, stream, tc);

  ASSERT_EQ(seq.epoch_loss.size(), streamed.epoch_loss.size());
  for (std::size_t e = 0; e < seq.epoch_loss.size(); ++e)
    EXPECT_DOUBLE_EQ(seq.epoch_loss[e], streamed.epoch_loss[e]) << "epoch " << e;
}

}  // namespace
}  // namespace dg::data
