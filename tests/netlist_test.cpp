#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace dg::netlist {
namespace {

TEST(Netlist, BuildAndQuery) {
  Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int g = nl.add_gate(GateType::kNand, {a, b}, "g");
  nl.mark_output(g);
  EXPECT_EQ(nl.size(), 3U);
  EXPECT_EQ(nl.inputs().size(), 2U);
  EXPECT_EQ(nl.outputs().size(), 1U);
  EXPECT_EQ(nl.gate(g).type, GateType::kNand);
  EXPECT_EQ(nl.gate(g).fanins.size(), 2U);
}

TEST(Netlist, LevelsAndDepth) {
  Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  const int n1 = nl.add_gate(GateType::kAnd, {a, b});
  const int n2 = nl.add_gate(GateType::kNot, {n1});
  const int n3 = nl.add_gate(GateType::kOr, {n2, a});
  nl.mark_output(n3);
  const auto lvl = nl.levels();
  EXPECT_EQ(lvl[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(lvl[static_cast<std::size_t>(n1)], 1);
  EXPECT_EQ(lvl[static_cast<std::size_t>(n2)], 2);
  EXPECT_EQ(lvl[static_cast<std::size_t>(n3)], 3);
  EXPECT_EQ(nl.depth(), 3);
}

TEST(Netlist, TypeHistogram) {
  Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  nl.add_gate(GateType::kXor, {a, b});
  nl.add_gate(GateType::kXor, {a, b});
  nl.add_gate(GateType::kNot, {a});
  const auto h = nl.type_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::kInput)], 2U);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::kXor)], 2U);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::kNot)], 1U);
}

TEST(EvalGateWords, TwoInputTruthTables) {
  // patterns: a = 0101 (0x5), b = 0011 (0x3) over 4 lanes
  const std::vector<std::uint64_t> in{0x5ULL, 0x3ULL};
  EXPECT_EQ(eval_gate_words(GateType::kAnd, in) & 0xF, 0x1ULL);
  EXPECT_EQ(eval_gate_words(GateType::kOr, in) & 0xF, 0x7ULL);
  EXPECT_EQ(eval_gate_words(GateType::kNand, in) & 0xF, 0xEULL);
  EXPECT_EQ(eval_gate_words(GateType::kNor, in) & 0xF, 0x8ULL);
  EXPECT_EQ(eval_gate_words(GateType::kXor, in) & 0xF, 0x6ULL);
  EXPECT_EQ(eval_gate_words(GateType::kXnor, in) & 0xF, 0x9ULL);
}

TEST(EvalGateWords, UnaryGates) {
  const std::vector<std::uint64_t> in{0x5ULL};
  EXPECT_EQ(eval_gate_words(GateType::kNot, in) & 0xF, 0xAULL);
  EXPECT_EQ(eval_gate_words(GateType::kBuf, in) & 0xF, 0x5ULL);
}

TEST(EvalGateWords, MultiInputGates) {
  const std::vector<std::uint64_t> in{0xFFULL, 0x0FULL, 0x33ULL};
  EXPECT_EQ(eval_gate_words(GateType::kAnd, in) & 0xFFULL, 0x03ULL);
  EXPECT_EQ(eval_gate_words(GateType::kOr, in) & 0xFFULL, 0xFFULL);
  EXPECT_EQ(eval_gate_words(GateType::kXor, in) & 0xFFULL, (0xFFULL ^ 0x0FULL ^ 0x33ULL));
}

TEST(Decompose, PreservesFunctionOnAllGateTypes) {
  for (GateType t : {GateType::kAnd, GateType::kOr, GateType::kXor, GateType::kNand,
                     GateType::kNor, GateType::kXnor}) {
    Netlist nl;
    std::vector<int> ins;
    for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input());
    nl.mark_output(nl.add_gate(t, ins));
    const Netlist flat = decompose_to_2input(nl);
    // All gates now 2-input.
    for (const auto& g : flat.gates())
      if (g.type != GateType::kInput) {
        EXPECT_LE(g.fanins.size(), 2U);
      }
    // Function preserved on random words.
    const std::vector<std::uint64_t> patterns{0x123456789abcdef0ULL, 0xfedcba9876543210ULL,
                                              0x0f0f0f0f0f0f0f0fULL, 0x00ff00ff00ff00ffULL,
                                              0xaaaaaaaaaaaaaaaaULL};
    const auto w1 = eval_gate_words(t, patterns);
    // Evaluate decomposed netlist directly.
    std::vector<std::uint64_t> words(flat.size(), 0);
    std::size_t pi = 0;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      const auto& g = flat.gate(static_cast<int>(i));
      if (g.type == GateType::kInput) {
        words[i] = patterns[pi++];
        continue;
      }
      std::vector<std::uint64_t> fw;
      for (int f : g.fanins) fw.push_back(words[static_cast<std::size_t>(f)]);
      words[i] = eval_gate_words(g.type, fw);
    }
    EXPECT_EQ(words[static_cast<std::size_t>(flat.outputs()[0])], w1)
        << gate_type_name(t);
  }
}

TEST(Decompose, PreservesInvertingTypeAtRoot) {
  // The inverting gate types must survive decomposition (the Table IV raw
  // circuits keep their type vocabulary).
  Netlist nl;
  std::vector<int> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(nl.add_input());
  nl.mark_output(nl.add_gate(GateType::kNand, ins));
  const Netlist flat = decompose_to_2input(nl);
  EXPECT_EQ(flat.gate(flat.outputs()[0]).type, GateType::kNand);
  const auto h = flat.type_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::kNand)], 1U);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::kAnd)], 4U);
}

TEST(Netlist, GateTypeNames) {
  EXPECT_STREQ(gate_type_name(GateType::kNand), "NAND");
  EXPECT_STREQ(gate_type_name(GateType::kInput), "INPUT");
  EXPECT_STREQ(gate_type_name(GateType::kXnor), "XNOR");
}

}  // namespace
}  // namespace dg::netlist
