// Mutation-fuzzed equality oracle for incremental inference: a random edit
// stream drives an IncrementalSession and, after every applied edit, the
// session's incremental outputs must be BITWISE identical to rebuilding the
// graph from its defining fields and running the plain forward — for all
// four model families, with the no-grad arena both on and off. Plus the
// structural guarantee behind the memo: embed-then-predict on an unchanged
// session performs exactly one level-loop forward.
#include "core/incremental_session.hpp"

#include "gnn/incremental.hpp"
#include "nn/arena.hpp"
#include "synth/mutate.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace {

using dg::gnn::CircuitGraph;

/// Random typed DAG with skip edges (same shape family as the graph-layer
/// delta tests, independent of the AIG pipeline).
CircuitGraph random_graph(int n, std::uint64_t seed) {
  dg::util::Rng rng(seed);
  CircuitGraph g;
  g.num_nodes = n;
  g.num_types = 3;
  g.type_id.resize(static_cast<std::size_t>(n));
  g.level.resize(static_cast<std::size_t>(n));
  g.labels.assign(static_cast<std::size_t>(n), 0.5F);
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (v < 3 || rng.next_bool(0.2)) {
      g.type_id[vi] = 0;
      g.level[vi] = 0;
      continue;
    }
    const int arity = 1 + static_cast<int>(rng.next_below(2));
    g.type_id[vi] = arity == 1 ? 2 : 1;
    int max_level = -1;
    for (int k = 0; k < arity; ++k) {
      const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v)));
      g.edges.emplace_back(src, v);
      max_level = std::max(max_level, g.level[static_cast<std::size_t>(src)]);
    }
    g.level[vi] = max_level + 1;
  }
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (g.level[vi] < 2 || !rng.next_bool(0.25)) continue;
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(v)));
    const int diff = g.level[vi] - g.level[static_cast<std::size_t>(src)];
    if (diff >= 2) g.skip_edges.push_back({src, v, diff});
  }
  g.finalize();
  return g;
}

/// From-scratch oracle: rebuild every derived structure from the mutated
/// graph's defining fields, so the reference forward shares nothing with the
/// delta-maintained layout.
CircuitGraph rebuild(const CircuitGraph& g) {
  CircuitGraph fresh;
  fresh.num_nodes = g.num_nodes;
  fresh.num_types = g.num_types;
  fresh.type_id = g.type_id;
  fresh.level = g.level;
  fresh.edges = g.edges;
  fresh.skip_edges = g.skip_edges;
  fresh.labels = g.labels;
  fresh.finalize(g.pe_L);
  return fresh;
}

void expect_bitwise(const std::vector<float>& got, const std::vector<float>& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  if (!got.empty()) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0) << what;
  }
}

void expect_bitwise(const dg::nn::Matrix& got, const dg::nn::Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  if (got.size() != 0) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0) << what;
  }
}

deepgate::Options small_options(dg::gnn::ModelFamily family) {
  deepgate::Options o;
  o.model.dim = 8;
  o.model.iterations = 2;
  o.model.mlp_hidden = 8;
  o.spec.family = family;
  o.spec.agg = dg::gnn::AggKind::kAttention;
  o.spec.use_skip = family == dg::gnn::ModelFamily::kDeepGate;
  return o;
}

/// One fuzzed session: stream random edits, query after every applied edit,
/// compare bitwise against the rebuilt-from-scratch forward.
void fuzz_family(dg::gnn::ModelFamily family, bool arena_on, std::uint64_t seed) {
  SCOPED_TRACE(std::string(dg::gnn::model_family_name(family)) +
               (arena_on ? " arena=on" : " arena=off"));
  const bool arena_before = dg::nn::arena_enabled();
  dg::nn::arena_set_enabled(arena_on);

  const deepgate::Engine engine(small_options(family));
  deepgate::IncrementalSession session(engine, random_graph(30, seed));
  dg::util::Rng rng(seed * 77 + 1);

  int applied = 0;
  for (int step = 0; step < 40 && applied < 16; ++step) {
    const CircuitGraph& g = session.graph();
    dg::synth::MutationContext ctx;
    ctx.num_nodes = g.num_nodes;
    ctx.num_types = g.num_types;
    ctx.type_id = g.type_id;
    ctx.level = g.level;
    ctx.fanout_count = g.fanout_counts();
    const dg::synth::Mutation m = dg::synth::random_mutation(ctx, rng);
    try {
      switch (m.kind) {
        case dg::synth::Mutation::Kind::kInsert:
          session.insert_node(m.type_id, m.fanins);
          break;
        case dg::synth::Mutation::Kind::kDelete:
          session.delete_node(m.node);
          break;
        case dg::synth::Mutation::Kind::kRewire:
          session.rewire_node(m.node, m.fanins);
          break;
      }
      ++applied;
    } catch (const std::invalid_argument&) {
      continue;  // cycle-creating rewire: skipped step
    }

    const CircuitGraph fresh = rebuild(session.graph());
    expect_bitwise(engine.predict_incremental(session), engine.predict_probabilities(fresh),
                   "prediction");
    // Unchanged since the predict: must replay the memo, and still match.
    expect_bitwise(engine.embeddings_incremental(session), engine.embeddings(fresh),
                   "embedding");
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first divergence after applied edit " << applied;
      break;
    }
  }
  EXPECT_GE(applied, 10);
  dg::nn::arena_set_enabled(arena_before);
}

class IncrementalFuzz : public ::testing::TestWithParam<bool> {};

TEST_P(IncrementalFuzz, DeepGateMatchesFromScratch) {
  fuzz_family(dg::gnn::ModelFamily::kDeepGate, GetParam(), 21);
}
TEST_P(IncrementalFuzz, DagRecMatchesFromScratch) {
  fuzz_family(dg::gnn::ModelFamily::kDagRec, GetParam(), 22);
}
TEST_P(IncrementalFuzz, DagConvMatchesFromScratch) {
  fuzz_family(dg::gnn::ModelFamily::kDagConv, GetParam(), 23);
}
TEST_P(IncrementalFuzz, GcnMatchesFromScratch) {
  fuzz_family(dg::gnn::ModelFamily::kGcn, GetParam(), 24);
}

INSTANTIATE_TEST_SUITE_P(ArenaOnOff, IncrementalFuzz, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ArenaOn" : "ArenaOff";
                         });

// Memoization disabled: every query is a plain full forward, and outputs
// still match the from-scratch oracle.
TEST(IncrementalMemoKnob, DisabledSessionStaysCorrect) {
  struct OverrideGuard {
    ~OverrideGuard() { dg::gnn::incremental_memo_clear_override(); }
  } guard;

  const deepgate::Engine engine(small_options(dg::gnn::ModelFamily::kDeepGate));
  deepgate::IncrementalSession session(engine, random_graph(25, 5));

  // Capture a memo, then disable: the next query must fall back to a plain
  // full forward AND discard the now-unmaintained memo.
  auto probs = engine.predict_incremental(session);
  EXPECT_TRUE(session.last_stats().partial == false && session.last_stats().memo_hit == false);
  dg::gnn::incremental_memo_set_enabled(false);
  session.insert_node(1, {0, 1});
  probs = engine.predict_incremental(session);
  EXPECT_FALSE(session.last_stats().memo_hit);
  EXPECT_FALSE(session.last_stats().partial);
  expect_bitwise(probs, engine.predict_probabilities(rebuild(session.graph())), "disabled");

  // Re-enabling mid-session must not resurrect the stale pre-disable memo.
  dg::gnn::incremental_memo_set_enabled(true);
  session.rewire_node(session.graph().num_nodes - 1, {1, 2});
  probs = engine.predict_incremental(session);
  EXPECT_FALSE(session.last_stats().partial);  // no memo survived: full capture
  expect_bitwise(probs, engine.predict_probabilities(rebuild(session.graph())), "re-enabled");

  // And the rebuilt memo serves the partial path again.
  session.insert_node(2, {0});
  probs = engine.predict_incremental(session);
  EXPECT_TRUE(session.last_stats().partial);
  expect_bitwise(probs, engine.predict_probabilities(rebuild(session.graph())), "partial again");
}

// The PR 5 residual, closed: embed-then-predict on an unchanged session runs
// exactly ONE level-loop propagation (the embed's), the predict replays the
// memo. Asserted structurally via the process-wide forward counters.
TEST(IncrementalForwardCount, EmbedThenPredictUnchangedIsOneForward) {
  const deepgate::Engine engine(small_options(dg::gnn::ModelFamily::kDeepGate));
  deepgate::IncrementalSession session(engine, random_graph(30, 9));

  const auto c0 = dg::gnn::forward_counters();
  const dg::nn::Matrix emb = engine.embeddings_incremental(session);
  const auto c1 = dg::gnn::forward_counters();
  EXPECT_EQ(c1.full, c0.full + 1);
  EXPECT_EQ(c1.partial, c0.partial);

  const std::vector<float> probs = engine.predict_incremental(session);
  const auto c2 = dg::gnn::forward_counters();
  EXPECT_EQ(c2.full, c1.full);  // memo hit: zero propagation
  EXPECT_EQ(c2.partial, c1.partial);
  EXPECT_TRUE(session.last_stats().memo_hit);
  EXPECT_EQ(static_cast<int>(probs.size()), session.graph().num_nodes);
  EXPECT_EQ(emb.rows(), session.graph().num_nodes);

  // An edit flips the next query to the cone-limited partial path.
  session.insert_node(1, {0, 1});
  engine.predict_incremental(session);
  const auto c3 = dg::gnn::forward_counters();
  EXPECT_EQ(c3.full, c2.full);
  EXPECT_EQ(c3.partial, c2.partial + 1);
  EXPECT_TRUE(session.last_stats().partial);
  EXPECT_GT(session.last_stats().dirty_nodes, 0);
  EXPECT_LT(session.last_stats().dirty_nodes, session.graph().num_nodes);
}

TEST(IncrementalSession, RejectsForeignAndDegenerateGraphs) {
  const deepgate::Engine a(small_options(dg::gnn::ModelFamily::kDeepGate));
  const deepgate::Engine b(small_options(dg::gnn::ModelFamily::kDeepGate));
  EXPECT_THROW(deepgate::IncrementalSession(a, CircuitGraph{}), std::invalid_argument);

  const CircuitGraph g1 = random_graph(10, 3);
  const CircuitGraph g2 = random_graph(10, 4);
  EXPECT_THROW(deepgate::IncrementalSession(a, CircuitGraph::merge({&g1, &g2})),
               std::invalid_argument);

  deepgate::IncrementalSession session(a, random_graph(10, 3));
  EXPECT_THROW(b.predict_incremental(session), std::invalid_argument);
  EXPECT_THROW(b.embeddings_incremental(session), std::invalid_argument);
}

}  // namespace
