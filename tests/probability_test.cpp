// Signal-probability estimation: Monte-Carlo must converge to the exact
// (exhaustive) values, which are themselves verified against hand-computed
// probabilities on canonical structures.
#include "sim/probability.hpp"

#include "aig/gate_graph.hpp"
#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "util/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::sim {
namespace {

using namespace dg::aig;

TEST(Probability, SingleAndGateExact) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit f = a.add_and(x, y);
  a.add_output(f);
  const auto p = exact_aig_probabilities(a);
  EXPECT_DOUBLE_EQ(p[lit_var(x)], 0.5);
  EXPECT_DOUBLE_EQ(p[lit_var(f)], 0.25);
}

TEST(Probability, XorIsHalf) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit f = a.make_xor(x, y);
  a.add_output(f);
  const auto p = exact_aig_probabilities(a);
  EXPECT_DOUBLE_EQ(p[lit_var(f)], 0.5);
}

TEST(Probability, DeepAndChainHalves) {
  // AND of k independent inputs has probability 2^-k.
  Aig a;
  std::vector<Lit> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(make_lit(a.add_input(), false));
  const Lit f = a.make_and_n(ins);
  a.add_output(f);
  const auto p = exact_aig_probabilities(a);
  EXPECT_DOUBLE_EQ(p[lit_var(f)], 1.0 / 32.0);
}

TEST(Probability, ReconvergenceBreaksIndependence) {
  // f = x & !x through two paths would be 0.25 under independence but is
  // exactly 0 — the paper's core motivation for simulation-based labels.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(lit_not(x), y);
  // OR of two mutually exclusive terms: p = p1 + p2 exactly.
  const Lit f = a.make_or(n1, n2);
  a.add_output(f);
  const auto p = exact_aig_probabilities(a);
  EXPECT_DOUBLE_EQ(p[lit_var(f)], 0.5);  // = P(y)
}

TEST(Probability, MonteCarloConvergesToExact) {
  // A 16-input random structure small enough for exhaustive enumeration.
  util::Rng rng(5);
  Aig a;
  std::vector<Lit> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(make_lit(a.add_input(), false));
  for (int i = 0; i < 60; ++i) {
    const Lit p = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    Lit q = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    if (rng.next_bool()) q = lit_not(q);
    const Lit n = a.add_and(p, q);
    if (a.is_and(lit_var(n))) pool.push_back(n);
  }
  a.add_output(pool.back());
  const auto exact = exact_aig_probabilities(a);
  const auto mc = aig_probabilities(a, 200000, 99);
  double max_err = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v)
    max_err = std::max(max_err, std::abs(exact[v] - mc[v]));
  EXPECT_LT(max_err, 0.01);
}

TEST(Probability, MoreSamplesReduceError) {
  Aig a;
  std::vector<Lit> ins;
  for (int i = 0; i < 10; ++i) ins.push_back(make_lit(a.add_input(), false));
  a.add_output(a.make_and_n(ins));
  const auto exact = exact_aig_probabilities(a);

  auto rms = [&](std::size_t patterns) {
    const auto mc = aig_probabilities(a, patterns, 7);
    double acc = 0.0;
    for (std::size_t v = 1; v < exact.size(); ++v) {
      const double e = exact[v] - mc[v];
      acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(exact.size() - 1));
  };
  EXPECT_LT(rms(100000), rms(1000) + 1e-12);
}

TEST(Probability, GateGraphLabelsMatchAig) {
  util::Rng rng(6);
  const Aig a = netlist::to_aig(data::gen_opencores_like(rng));
  const GateGraph g = to_gate_graph(a);
  const auto pa = aig_probabilities(a, 50000, 11);
  const auto pg = gate_graph_probabilities(g, 50000, 11);
  // Output nodes must match between representations (same seed & patterns).
  for (std::size_t o = 0; o < a.num_outputs(); ++o) {
    const Lit ol = a.outputs()[o];
    double ap = pa[lit_var(ol)];
    if (lit_neg(ol)) ap = 1.0 - ap;
    EXPECT_NEAR(ap, pg[static_cast<std::size_t>(g.outputs[o])], 1e-12);
  }
}

TEST(Probability, NetlistGateProbabilities) {
  netlist::Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  const int f = nl.add_gate(netlist::GateType::kNor, {a, b});
  nl.mark_output(f);
  const auto p = netlist_probabilities(nl, 100000, 3);
  EXPECT_NEAR(p[static_cast<std::size_t>(f)], 0.25, 0.01);
}

TEST(Probability, ExhaustiveRejectsTooManyInputs) {
  Aig a;
  for (int i = 0; i < 25; ++i) (void)a.add_input();
  a.add_output(make_lit(a.inputs()[0], false));
  EXPECT_THROW(exact_aig_probabilities(a), std::invalid_argument);
}

TEST(Probability, PartialLastBlockHandled) {
  // 70 patterns = one full word + 6 lanes; PI probability should still be
  // close to 0.5 and, critically, never exceed 1.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  a.add_output(x);
  const auto p = aig_probabilities(a, 70, 13);
  EXPECT_GE(p[lit_var(x)], 0.0);
  EXPECT_LE(p[lit_var(x)], 1.0);
}

TEST(Probability, DeterministicForSeed) {
  util::Rng rng(8);
  const Aig a = netlist::to_aig(data::gen_iwls_like(rng));
  const auto p1 = aig_probabilities(a, 10000, 42);
  const auto p2 = aig_probabilities(a, 10000, 42);
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace dg::sim
