#include "analysis/reconvergence.hpp"

#include "aig/gate_graph.hpp"
#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "util/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dg::analysis {
namespace {

using namespace dg::aig;

GateGraph diamond() {
  // x fans out to two ANDs which reconverge at the top:
  //   n1 = x & y, n2 = x & z, top = n1 & n2
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(x, z);
  a.add_output(a.add_and(n1, n2));
  return to_gate_graph(a);
}

TEST(Reconvergence, DetectsDiamond) {
  const GateGraph g = diamond();
  const auto skips = find_reconvergences(g);
  ASSERT_EQ(skips.size(), 1U);
  // Source is the PI for x (node 0), destination the top AND (last node).
  EXPECT_EQ(skips[0].src, 0);
  EXPECT_EQ(skips[0].dst, static_cast<int>(g.size()) - 1);
  EXPECT_EQ(skips[0].level_diff, 2);
}

TEST(Reconvergence, TreeHasNone) {
  // A fanout-free AND tree has no reconvergence.
  Aig a;
  std::vector<Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(make_lit(a.add_input(), false));
  a.add_output(a.make_and_n(ins));
  const auto skips = find_reconvergences(to_gate_graph(a));
  EXPECT_TRUE(skips.empty());
}

TEST(Reconvergence, FanoutWithoutReconvergenceIsNotFlagged) {
  // x feeds two ANDs that go to separate outputs — no meeting point.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y));
  a.add_output(a.add_and(x, z));
  EXPECT_TRUE(find_reconvergences(to_gate_graph(a)).empty());
}

TEST(Reconvergence, XorStructureReconverges) {
  // make_xor builds (!(a&b)) & (!(!a&!b)) — both a and b reconverge at top.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(a.make_xor(x, y));
  ReconvergenceOptions opts;
  opts.one_per_node = false;
  const auto skips = find_reconvergences(to_gate_graph(a), opts);
  EXPECT_GE(skips.size(), 2U);
}

TEST(Reconvergence, OnePerNodePicksNearest) {
  // Two sources reconverge at the same node; nearest (higher level) wins.
  //  s_far = x&y (level 2 in gate graph), s_near = s_far & z
  //  branch1 = s_near & w1, branch2 = s_near & w2, top = branch1 & branch2
  // both s_near and s_far reconverge at top; s_near is nearer.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit w1 = make_lit(a.add_input(), false);
  const Lit w2 = make_lit(a.add_input(), false);
  const Lit s_far = a.add_and(x, y);
  const Lit s_near = a.add_and(s_far, z);
  const Lit b1 = a.add_and(s_near, w1);
  const Lit b2 = a.add_and(s_near, w2);
  a.add_output(a.add_and(b1, b2));
  // also make s_far a fanout stem by using it elsewhere
  a.add_output(a.add_and(s_far, w1));

  const GateGraph g = to_gate_graph(a);
  ReconvergenceOptions opts;
  opts.one_per_node = true;
  const auto skips = find_reconvergences(g, opts);
  // The top node must pair with the *nearest* reconverging source.
  int top = -1;
  for (const auto& e : skips) top = std::max(top, e.dst);
  for (const auto& e : skips) {
    if (e.dst == top) {
      EXPECT_EQ(e.level_diff, 2);
    }
  }
}

TEST(Reconvergence, LevelDiffAlwaysPositive) {
  util::Rng rng(5);
  for (const auto& family : data::family_names()) {
    const auto g = to_gate_graph(netlist::to_aig(data::generate_family(family, rng)));
    for (const auto& e : find_reconvergences(g)) {
      EXPECT_GE(e.level_diff, 2);
      EXPECT_EQ(e.level_diff, g.level[static_cast<std::size_t>(e.dst)] -
                                  g.level[static_cast<std::size_t>(e.src)]);
      EXPECT_LT(e.src, e.dst);
    }
  }
}

TEST(Reconvergence, SourceCapBoundsMemory) {
  util::Rng rng(6);
  const auto g = to_gate_graph(netlist::to_aig(data::gen_iwls_like(rng)));
  ReconvergenceOptions tight;
  tight.max_sources_per_node = 4;
  ReconvergenceOptions loose;
  loose.max_sources_per_node = 1024;
  const auto tight_skips = find_reconvergences(g, tight);
  const auto loose_skips = find_reconvergences(g, loose);
  // Capping may only *miss* reconvergences, never invent them.
  EXPECT_LE(tight_skips.size(), loose_skips.size());
}

TEST(Reconvergence, WindowLimitsDistance) {
  const GateGraph g = diamond();
  ReconvergenceOptions opts;
  opts.max_level_diff = 1;  // diamond needs diff 2
  EXPECT_TRUE(find_reconvergences(g, opts).empty());
}

TEST(Reconvergence, DeterministicOutput) {
  util::Rng rng(7);
  const auto g = to_gate_graph(netlist::to_aig(data::gen_epfl_like(rng)));
  const auto s1 = find_reconvergences(g);
  const auto s2 = find_reconvergences(g);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].src, s2[i].src);
    EXPECT_EQ(s1[i].dst, s2[i].dst);
  }
}

}  // namespace
}  // namespace dg::analysis
