// Cross-module integration: the full experiment pipeline end to end at a
// miniature scale, asserting the qualitative relationships the paper's
// evaluation rests on (not the absolute numbers, which need full training).
#include "analysis/cop.hpp"
#include "core/deepgate.hpp"
#include "data/dataset.hpp"
#include "data/generators_large.hpp"
#include "gnn/metrics.hpp"
#include "gnn/models.hpp"
#include "gnn/trainer.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace dg;

struct Pipeline {
  std::vector<gnn::CircuitGraph> train_set, test_set;

  Pipeline() {
    data::DatasetConfig cfg = data::default_dataset_config(util::BenchScale::kTiny, 1234);
    cfg.sim_patterns = 30000;
    const data::Dataset ds = data::build_dataset(cfg);
    ds.split(0.8, 5, train_set, test_set);
  }
};

gnn::ModelConfig small_model() {
  gnn::ModelConfig cfg;
  cfg.dim = 16;
  cfg.iterations = 5;
  cfg.mlp_hidden = 12;
  cfg.seed = 77;
  return cfg;
}

gnn::TrainConfig short_training() {
  gnn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.lr = 3e-3F;
  cfg.seed = 9;
  return cfg;
}

TEST(Integration, DeepGateLearnsProbabilitiesOnHeldOutCircuits) {
  Pipeline p;
  ASSERT_GE(p.test_set.size(), 2U);
  auto model = gnn::make_deepgate(small_model());
  const double before = gnn::evaluate(*model, p.test_set);
  gnn::train(*model, p.train_set, short_training());
  const double after = gnn::evaluate(*model, p.test_set);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.15);  // untrained is ~0.25-0.5; learned must beat it clearly
}

TEST(Integration, RecurrentModelBeatsUndirectedGcnAtEqualBudget) {
  // The paper's core Table II finding, in miniature: direction-aware
  // recurrent propagation is far better suited to probability prediction
  // than undirected convolution. GCN converges almost immediately (it can
  // only regress type-conditional means), so both get a schedule long enough
  // for the recurrent model to express its advantage.
  Pipeline p;
  gnn::TrainConfig schedule = short_training();
  schedule.epochs = 20;
  schedule.batch_circuits = 4;
  gnn::ModelSpec gcn_spec{gnn::ModelFamily::kGcn, gnn::AggKind::kConvSum, false};
  auto gcn = gnn::make_model(gcn_spec, small_model());
  auto deepgate_model = gnn::make_deepgate(small_model());
  gnn::train(*gcn, p.train_set, schedule);
  gnn::train(*deepgate_model, p.train_set, schedule);
  const double gcn_err = gnn::evaluate(*gcn, p.test_set);
  const double dg_err = gnn::evaluate(*deepgate_model, p.test_set);
  EXPECT_LT(dg_err, gcn_err);
}

TEST(Integration, TrainedModelTransfersToLargerCircuit) {
  // Generalization in miniature (Table III's premise): train on tiny
  // sub-circuits, evaluate on a much larger generated design; the trained
  // model must stay far below the untrained baseline.
  Pipeline p;
  auto model = gnn::make_deepgate(small_model());
  auto untrained = gnn::make_deepgate(small_model());
  gnn::train(*model, p.train_set, short_training());

  const auto big = data::graph_from_aig(data::gen_multiplier(12), 50000, 3);
  EXPECT_GT(big.num_nodes, 1000);
  const double trained_err = gnn::evaluate(*model, {big});
  const double untrained_err = gnn::evaluate(*untrained, {big});
  EXPECT_LT(trained_err, untrained_err);
}

TEST(Integration, FacadeMatchesDirectPipeline) {
  Pipeline p;
  deepgate::Options opt;
  opt.model = small_model();
  opt.spec.use_skip = true;
  deepgate::Engine engine(opt);
  engine.train(p.train_set, short_training());
  const double facade_err = engine.evaluate(p.test_set);

  auto direct_cfg = small_model();
  direct_cfg.use_skip = true;
  auto direct = gnn::make_deepgate(direct_cfg);
  gnn::train(*direct, p.train_set, short_training());
  const double direct_err = gnn::evaluate(*direct, p.test_set);
  EXPECT_NEAR(facade_err, direct_err, 1e-9);
}

TEST(Integration, LabelsDisagreeWithCopUnderReconvergence) {
  // Sanity of the supervision signal: on reconvergent circuits, simulated
  // labels must differ from the independence-assuming COP estimate for at
  // least some nodes (otherwise the learning problem would be trivial).
  Pipeline p;
  bool any_disagreement = false;
  for (const auto& g : p.train_set) {
    if (g.skip_edges.empty()) continue;
    // Rebuild a COP estimate directly on the circuit graph structure.
    std::vector<double> cop(static_cast<std::size_t>(g.num_nodes), 0.5);
    for (int v = 0; v < g.num_nodes; ++v) {
      double prod = 1.0;
      int fanins = 0;
      for (const auto& [src, dst] : g.edges) {
        if (dst == v) {
          prod *= cop[static_cast<std::size_t>(src)];
          ++fanins;
        }
      }
      if (fanins == 2) cop[static_cast<std::size_t>(v)] = prod;           // AND
      else if (fanins == 1) cop[static_cast<std::size_t>(v)] = 1.0 - prod; // NOT
    }
    for (int v = 0; v < g.num_nodes; ++v) {
      if (std::abs(cop[static_cast<std::size_t>(v)] -
                   static_cast<double>(g.labels[static_cast<std::size_t>(v)])) > 0.05) {
        any_disagreement = true;
        break;
      }
    }
    if (any_disagreement) break;
  }
  EXPECT_TRUE(any_disagreement);
}

}  // namespace
