#include "sim/bitsim.hpp"
#include "sim/patterns.hpp"

#include "aig/gate_graph.hpp"
#include "data/generators_small.hpp"
#include "netlist/to_aig.hpp"
#include "util/rng.hpp"

#include <bit>
#include <set>

#include <gtest/gtest.h>

namespace dg::sim {
namespace {

using namespace dg::aig;

TEST(Patterns, StripesEnumerateExhaustively) {
  // For 3 inputs, the 8 low lanes must enumerate all 8 assignments exactly.
  std::set<int> seen;
  for (int lane = 0; lane < 8; ++lane) {
    int assignment = 0;
    for (std::size_t i = 0; i < 3; ++i)
      if ((exhaustive_word(i, 0) >> lane) & 1) assignment |= 1 << i;
    seen.insert(assignment);
  }
  EXPECT_EQ(seen.size(), 8U);
}

TEST(Patterns, HighInputsToggleAcrossBlocks) {
  // Input 6 toggles every block, input 7 every two blocks.
  EXPECT_EQ(exhaustive_word(6, 0), 0ULL);
  EXPECT_EQ(exhaustive_word(6, 1), ~0ULL);
  EXPECT_EQ(exhaustive_word(7, 0), 0ULL);
  EXPECT_EQ(exhaustive_word(7, 1), 0ULL);
  EXPECT_EQ(exhaustive_word(7, 2), ~0ULL);
}

TEST(Patterns, BlockCount) {
  EXPECT_EQ(exhaustive_blocks(3), 1ULL);
  EXPECT_EQ(exhaustive_blocks(6), 1ULL);
  EXPECT_EQ(exhaustive_blocks(7), 2ULL);
  EXPECT_EQ(exhaustive_blocks(10), 16ULL);
}

TEST(Patterns, LaneMask) {
  EXPECT_EQ(lane_mask(64), ~0ULL);
  EXPECT_EQ(lane_mask(1), 1ULL);
  EXPECT_EQ(lane_mask(8), 0xFFULL);
}

TEST(BitSim, AndGateTruth) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit f = a.add_and(x, lit_not(y));
  a.add_output(f);
  const auto words = simulate_aig(a, {0xCULL, 0xAULL});
  EXPECT_EQ(words[lit_var(f)] & 0xFULL, 0xCULL & ~0xAULL & 0xFULL);
}

TEST(BitSim, NetlistAgreesWithAigOnRandomCircuits) {
  util::Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const auto& families = data::family_names();
    const auto nl =
        data::generate_family(families[trial % families.size()], rng);
    const Aig a = netlist::to_aig(nl);
    std::vector<std::uint64_t> patterns(nl.inputs().size());
    for (auto& p : patterns) p = rng.next_u64();
    const auto nw = simulate_netlist(nl, patterns);
    const auto aw = simulate_aig(a, patterns);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o)
      EXPECT_EQ(nw[static_cast<std::size_t>(nl.outputs()[o])],
                lit_word(aw, a.outputs()[o]));
  }
}

TEST(BitSim, GateGraphAgreesWithAig) {
  util::Rng rng(4);
  const Aig a = netlist::to_aig(data::gen_epfl_like(rng));
  const GateGraph g = to_gate_graph(a);
  std::vector<std::uint64_t> patterns(a.num_inputs());
  for (auto& p : patterns) p = rng.next_u64();
  const auto aw = simulate_aig(a, patterns);
  const auto gw = simulate_gate_graph(g, patterns);
  for (std::size_t o = 0; o < a.num_outputs(); ++o)
    EXPECT_EQ(lit_word(aw, a.outputs()[o]), gw[static_cast<std::size_t>(g.outputs[o])]);
}

TEST(BitSim, ConstantZeroVarIsZero) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  a.add_output(x);
  const auto words = simulate_aig(a, {0xFFULL});
  EXPECT_EQ(words[0], 0ULL);  // var 0 = const false
}

}  // namespace
}  // namespace dg::sim
