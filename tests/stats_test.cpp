#include "analysis/stats.hpp"

#include "aig/gate_graph.hpp"

#include <gtest/gtest.h>

namespace dg::analysis {
namespace {

using namespace dg::aig;

TEST(Stats, CountsKindsAndDepth) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  a.add_output(lit_not(a.add_and(x, lit_not(y))));
  const auto s = compute_stats(to_gate_graph(a));
  EXPECT_EQ(s.num_pis, 2U);
  EXPECT_EQ(s.num_ands, 1U);
  EXPECT_EQ(s.num_nots, 2U);
  EXPECT_EQ(s.num_nodes, 5U);
  EXPECT_EQ(s.depth, 3);  // y -> NOT -> AND -> NOT
}

TEST(Stats, FanoutStems) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  a.add_output(a.add_and(x, y));
  a.add_output(a.add_and(x, z));
  const auto s = compute_stats(to_gate_graph(a));
  EXPECT_EQ(s.num_fanout_stems, 1U);  // only x
}

TEST(Stats, ReconvergenceCount) {
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit y = make_lit(a.add_input(), false);
  const Lit z = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, y);
  const Lit n2 = a.add_and(x, z);
  a.add_output(a.add_and(n1, n2));
  const auto s = compute_stats(to_gate_graph(a));
  EXPECT_EQ(s.num_reconv_nodes, 1U);
}

TEST(Stats, AvgFanoutOfChain) {
  // Chain x - n1 - n2: edges = 4 (x->n1, i1->n1, n1->n2, i2->n2), nodes = 5.
  Aig a;
  const Lit x = make_lit(a.add_input(), false);
  const Lit i1 = make_lit(a.add_input(), false);
  const Lit i2 = make_lit(a.add_input(), false);
  const Lit n1 = a.add_and(x, i1);
  a.add_output(a.add_and(n1, i2));
  const auto s = compute_stats(to_gate_graph(a));
  EXPECT_NEAR(s.avg_fanout, 4.0 / 5.0, 1e-12);
}

}  // namespace
}  // namespace dg::analysis
